//! Compressed-sparse-row Laplacian submatrices and the IC(0) incomplete
//! Cholesky preconditioner — the storage layer of the `sparse-cg` SDD
//! backend (see [`crate::sdd`]).
//!
//! The point of this module is that **nothing here ever densifies**: the
//! grounded Laplacian `L_{-S}` is held as CSR (`O(n + m)` memory), the
//! preconditioner reuses exactly the lower-triangular sparsity pattern of
//! `L_{-S}` (zero fill-in), and every operation — SpMV, factorization,
//! triangular solves — is linear in the number of stored entries. This is
//! what lets ApproxGreedy and the CG evaluators run on graphs far past the
//! dense `n ≈ 2k` ceiling.
//!
//! `L_{-S}` of a connected graph is a symmetric M-matrix, for which IC(0)
//! is known not to break down in exact arithmetic (Meijerink–van der
//! Vorst, 1977). Rounding can still push a pivot non-positive on nearly
//! singular systems, so [`IncompleteCholesky::factor`] retries with an
//! escalating Manteuffel diagonal shift `A + α·diag(A)` before giving up.

use crate::error::LinalgError;
use crate::pool::{self, SendPtr};
use crate::DenseMatrix;
use cfcc_graph::{Graph, Node};

/// Symmetric sparse matrix in CSR layout, rows sorted by column index.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build the grounded Laplacian `L_{-S}` over the compacted index
    /// space `V ∖ S` (same ordering as
    /// [`crate::laplacian::LaplacianSubmatrix`]). Returns the matrix, the
    /// kept nodes in compact order, and the original-node → compact-index
    /// map (`usize::MAX` for grounded nodes). `O(n + m)` time and memory.
    pub fn grounded_laplacian(g: &Graph, in_s: &[bool]) -> (Self, Vec<Node>, Vec<usize>) {
        assert_eq!(in_s.len(), g.num_nodes());
        let keep: Vec<Node> = (0..g.num_nodes() as Node)
            .filter(|&u| !in_s[u as usize])
            .collect();
        let mut pos = vec![usize::MAX; g.num_nodes()];
        for (i, &u) in keep.iter().enumerate() {
            pos[u as usize] = i;
        }
        let n = keep.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        let mut row: Vec<(u32, f64)> = Vec::new();
        row_ptr.push(0);
        for &u in &keep {
            row.clear();
            row.push((pos[u as usize] as u32, g.degree(u) as f64));
            for &v in g.neighbors(u) {
                let j = pos[v as usize];
                if j != usize::MAX {
                    row.push((j as u32, -1.0));
                }
            }
            row.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &row {
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        (
            Self {
                n,
                row_ptr,
                col_idx,
                vals,
            },
            keep,
            pos,
        )
    }

    /// Assemble a symmetric matrix from its `diag`onal and a list of
    /// strictly-off-diagonal entries `(i, j, v)` with `i ≠ j` — each pair
    /// is stored mirrored, so list every unordered pair **once**. Rows
    /// come out sorted by column index (counting-sort by row, then a
    /// per-row sort). `O(n + k log k)` for `k` off-diagonal pairs.
    ///
    /// This is the assembly seam of the `lsst-pcg` ultrasparsifier
    /// ([`crate::lsst`]): the sparsified matrix is built directly in its
    /// elimination order and handed to [`IncompleteCholesky::factor`].
    pub fn from_symmetric_parts(n: usize, diag: &[f64], off: &[(u32, u32, f64)]) -> Self {
        assert_eq!(diag.len(), n);
        let mut row_ptr = vec![0usize; n + 1];
        for &(i, j, _) in off {
            debug_assert!(i != j && (i as usize) < n && (j as usize) < n);
            row_ptr[i as usize + 1] += 1;
            row_ptr[j as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i] + 1; // +1 diagonal per row
        }
        let nnz = row_ptr[n];
        let mut col_idx = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = row_ptr.clone();
        for (i, &d) in diag.iter().enumerate() {
            col_idx[cursor[i]] = i as u32;
            vals[cursor[i]] = d;
            cursor[i] += 1;
        }
        for &(i, j, v) in off {
            for (r, c) in [(i as usize, j), (j as usize, i)] {
                col_idx[cursor[r]] = c;
                vals[cursor[r]] = v;
                cursor[r] += 1;
            }
        }
        let mut row: Vec<(u32, f64)> = Vec::new();
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            row.clear();
            row.extend(
                col_idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            row.sort_unstable_by_key(|&(c, _)| c);
            for (k, &(c, v)) in row.iter().enumerate() {
                col_idx[lo + k] = c;
                vals[lo + k] = v;
            }
        }
        Self {
            n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[idx] * x[self.col_idx[idx] as usize];
            }
            *yi = acc;
        }
    }

    /// `Y = A X` for a block of column vectors (row-major `n × w`
    /// matrices). The sparse pattern is traversed **once** for all `w`
    /// columns — the multi-RHS sharing the blocked PCG relies on: every
    /// loaded `(col, val)` pair feeds `w` multiply-adds on adjacent
    /// memory instead of one.
    pub fn spmm(&self, x: &DenseMatrix, y: &mut DenseMatrix) {
        self.spmm_threaded(x, y, 1);
    }

    /// [`CsrMatrix::spmm`] with output rows partitioned across the worker
    /// pool. Every output row is one independent gather, so results are
    /// bit-identical for every thread count.
    pub fn spmm_threaded(&self, x: &DenseMatrix, y: &mut DenseMatrix, threads: usize) {
        debug_assert_eq!(x.rows(), self.n);
        debug_assert_eq!(y.rows(), self.n);
        debug_assert_eq!(x.cols(), y.cols());
        let w = x.cols();
        /// Minimum multiply-adds per pool task.
        const GRAIN: usize = 16 * 1024;
        let t = threads.max(1).min(self.n).min(1 + self.nnz() * w / GRAIN);
        let yp = SendPtr::new(y.data_mut());
        pool::run(t, t, &move |tix| {
            let r0 = self.n * tix / t;
            let r1 = self.n * (tix + 1) / t;
            for i in r0..r1 {
                // SAFETY: rows [r0, r1) of y are owned exclusively by
                // this task (disjoint partition over output rows).
                let yr = unsafe { yp.slice(i * w, w) };
                yr.fill(0.0);
                for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                    let v = self.vals[idx];
                    let xr = x.row(self.col_idx[idx] as usize);
                    for (ys, &xs) in yr.iter_mut().zip(xr) {
                        *ys += v * xs;
                    }
                }
            }
        });
    }

    /// Test-only hook: scale the diagonal entries by `f` (used to force
    /// IC(0) breakdown, which a grounded-Laplacian M-matrix never does on
    /// its own).
    #[cfg(test)]
    pub(crate) fn scale_diagonal(&mut self, f: f64) {
        for i in 0..self.n {
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[idx] as usize == i {
                    self.vals[idx] *= f;
                }
            }
        }
    }

    /// Diagonal entries (the Jacobi preconditioner and the shift base).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (i, di) in d.iter_mut().enumerate() {
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[idx] as usize == i {
                    *di = self.vals[idx];
                }
            }
        }
        d
    }
}

/// Zero-fill incomplete Cholesky `A ≈ L Lᵀ` on the lower-triangular
/// pattern of a [`CsrMatrix`], with column lists for the transpose solve.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    /// Strictly-lower factor entries, CSR by row (columns ascending).
    low_ptr: Vec<usize>,
    low_col: Vec<u32>,
    low_val: Vec<f64>,
    /// Diagonal of `L`.
    diag: Vec<f64>,
    /// Strictly-lower pattern by column: `(row, index into low_val)`.
    csc_ptr: Vec<usize>,
    csc_row: Vec<u32>,
    csc_idx: Vec<usize>,
    /// Manteuffel shift `α` that made the factorization succeed (0 in the
    /// M-matrix common case).
    shift: f64,
}

impl IncompleteCholesky {
    /// Factor with escalating diagonal shifts until the pivots stay
    /// positive. For grounded Laplacians the first attempt (`α = 0`)
    /// succeeds; the fallback covers near-singular estimates.
    pub fn factor(a: &CsrMatrix) -> Result<Self, LinalgError> {
        let mut alpha = 0.0f64;
        let mut last = LinalgError::NotPositiveDefinite { row: 0, pivot: 0.0 };
        for attempt in 0..10 {
            match Self::try_factor(a, alpha) {
                Ok(ic) => return Ok(ic),
                Err(e) => {
                    last = e;
                    alpha = if attempt == 0 { 1e-4 } else { alpha * 10.0 };
                }
            }
        }
        Err(last)
    }

    /// The shift `α` used (0 unless breakdown forced a perturbation).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Stored strictly-lower entries.
    pub fn nnz_lower(&self) -> usize {
        self.low_val.len()
    }

    fn try_factor(a: &CsrMatrix, alpha: f64) -> Result<Self, LinalgError> {
        let n = a.n;
        // Strictly-lower pattern of A (columns ascending within each row).
        let mut low_ptr = Vec::with_capacity(n + 1);
        let mut low_col: Vec<u32> = Vec::new();
        let mut low_a: Vec<f64> = Vec::new();
        let mut diag_a = vec![0.0f64; n];
        low_ptr.push(0);
        for (i, da) in diag_a.iter_mut().enumerate() {
            for idx in a.row_ptr[i]..a.row_ptr[i + 1] {
                let j = a.col_idx[idx] as usize;
                if j < i {
                    low_col.push(j as u32);
                    low_a.push(a.vals[idx]);
                } else if j == i {
                    *da = a.vals[idx] * (1.0 + alpha);
                }
            }
            low_ptr.push(low_col.len());
        }
        // Column lists over the same pattern (CSC of the strict lower
        // part) — used both during factorization (scatter updates) and by
        // the backward `Lᵀ` solve.
        let mut csc_ptr = vec![0usize; n + 1];
        for &c in &low_col {
            csc_ptr[c as usize + 1] += 1;
        }
        for k in 0..n {
            csc_ptr[k + 1] += csc_ptr[k];
        }
        let mut cursor = csc_ptr.clone();
        let mut csc_row = vec![0u32; low_col.len()];
        let mut csc_idx = vec![0usize; low_col.len()];
        for i in 0..n {
            for (off, &c) in low_col[low_ptr[i]..low_ptr[i + 1]].iter().enumerate() {
                let c = c as usize;
                csc_row[cursor[c]] = i as u32;
                csc_idx[cursor[c]] = low_ptr[i] + off;
                cursor[c] += 1;
            }
        }

        // Up-looking factorization with a dense scatter workspace:
        // L[i][j] = (A[i][j] − Σ_{k<j} L[i][k]·L[j][k]) / L[j][j].
        let mut low_val = vec![0.0f64; low_a.len()];
        let mut diag = vec![0.0f64; n];
        let mut w = vec![0.0f64; n];
        let mut in_row = vec![false; n];
        for i in 0..n {
            let (lo, hi) = (low_ptr[i], low_ptr[i + 1]);
            for idx in lo..hi {
                let j = low_col[idx] as usize;
                w[j] = low_a[idx];
                in_row[j] = true;
            }
            let mut dii = diag_a[i];
            for idx in lo..hi {
                let j = low_col[idx] as usize;
                let lij = w[j] / diag[j];
                low_val[idx] = lij;
                dii -= lij * lij;
                // Finalizing column j of row i touches every later column
                // j' of row i with (j', j) in the pattern: subtract
                // L[i][j]·L[j'][j]. Rows in csc[j] are > j and the marker
                // restricts them to this row's pattern (hence < i, already
                // factored); a target outside the pattern is dropped fill
                // (MIC-style diagonal compensation of those drops cannot
                // preserve row sums in this up-looking pass — the
                // symmetric drop belongs to an already-finalized row — and
                // measured worse under the tree-depth orders we use).
                for t in csc_ptr[j]..csc_ptr[j + 1] {
                    let r = csc_row[t] as usize;
                    if in_row[r] {
                        w[r] -= lij * low_val[csc_idx[t]];
                    }
                }
            }
            for idx in lo..hi {
                in_row[low_col[idx] as usize] = false;
            }
            if dii <= f64::MIN_POSITIVE {
                return Err(LinalgError::NotPositiveDefinite { row: i, pivot: dii });
            }
            diag[i] = dii.sqrt();
        }
        Ok(Self {
            n,
            low_ptr,
            low_col,
            low_val,
            diag,
            csc_ptr,
            csc_row,
            csc_idx,
            shift: alpha,
        })
    }

    /// Apply the preconditioner: `z = (L Lᵀ)^{-1} r` by one forward and
    /// one backward sparse triangular solve.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        debug_assert_eq!(z.len(), self.n);
        // Forward: L y = r (rows ascending; row entries are columns < i).
        for i in 0..self.n {
            let mut acc = r[i];
            for idx in self.low_ptr[i]..self.low_ptr[i + 1] {
                acc -= self.low_val[idx] * z[self.low_col[idx] as usize];
            }
            z[i] = acc / self.diag[i];
        }
        // Backward: Lᵀ z = y (columns of L below i via the CSC lists).
        for i in (0..self.n).rev() {
            let mut acc = z[i];
            for t in self.csc_ptr[i]..self.csc_ptr[i + 1] {
                acc -= self.low_val[self.csc_idx[t]] * z[self.csc_row[t] as usize];
            }
            z[i] = acc / self.diag[i];
        }
    }

    /// Blocked [`IncompleteCholesky::apply`]: `Z = (L Lᵀ)⁻¹ R` for a block
    /// of columns, traversing the triangular factors once for all columns.
    pub fn apply_block(&self, r: &DenseMatrix, z: &mut DenseMatrix) {
        debug_assert_eq!(r.rows(), self.n);
        debug_assert_eq!(z.rows(), self.n);
        debug_assert_eq!(r.cols(), z.cols());
        let w = r.cols();
        let zd = z.data_mut();
        // Forward: L Y = R.
        for i in 0..self.n {
            let base = i * w;
            for (s, &rv) in r.row(i).iter().enumerate() {
                zd[base + s] = rv;
            }
            for idx in self.low_ptr[i]..self.low_ptr[i + 1] {
                let lv = self.low_val[idx];
                let jb = self.low_col[idx] as usize * w;
                for s in 0..w {
                    zd[base + s] -= lv * zd[jb + s];
                }
            }
            let inv_d = 1.0 / self.diag[i];
            for s in 0..w {
                zd[base + s] *= inv_d;
            }
        }
        // Backward: Lᵀ Z = Y.
        for i in (0..self.n).rev() {
            let base = i * w;
            for t in self.csc_ptr[i]..self.csc_ptr[i + 1] {
                let lv = self.low_val[self.csc_idx[t]];
                let jb = self.csc_row[t] as usize * w;
                for s in 0..w {
                    zd[base + s] -= lv * zd[jb + s];
                }
            }
            let inv_d = 1.0 / self.diag[i];
            for s in 0..w {
                zd[base + s] *= inv_d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{laplacian_submatrix_dense, LaplacianSubmatrix};
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn csr_matches_matrix_free_operator() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::barabasi_albert(80, 3, &mut rng);
        let mut in_s = vec![false; 80];
        in_s[3] = true;
        in_s[17] = true;
        let (csr, keep, _) = CsrMatrix::grounded_laplacian(&g, &in_s);
        let op = LaplacianSubmatrix::new(&g, &in_s);
        assert_eq!(csr.dim(), op.dim());
        assert_eq!(keep, op.kept_nodes());
        let x: Vec<f64> = (0..op.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ya = vec![0.0; op.dim()];
        let mut yb = vec![0.0; op.dim()];
        csr.spmv(&x, &mut ya);
        op.apply(&x, &mut yb);
        for (a, b) in ya.iter().zip(&yb) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(csr.diagonal(), op.diagonal());
    }

    #[test]
    fn csr_memory_is_linear_in_edges() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = generators::barabasi_albert(500, 3, &mut rng);
        let in_s = {
            let mut m = vec![false; 500];
            m[0] = true;
            m
        };
        let (csr, _, _) = CsrMatrix::grounded_laplacian(&g, &in_s);
        // nnz ≤ n + 2m — never the n² of a dense representation.
        assert!(csr.nnz() <= csr.dim() + 2 * g.num_edges());
    }

    #[test]
    fn ic0_factors_grounded_laplacian_without_shift() {
        let mut rng = StdRng::seed_from_u64(47);
        for trial in 0..4u64 {
            let g = match trial {
                0 => generators::barabasi_albert(120, 3, &mut rng),
                1 => generators::path(200),
                2 => generators::grid(12, 12),
                _ => generators::erdos_renyi_gnm(150, 600, &mut rng),
            };
            let n = g.num_nodes();
            let mut in_s = vec![false; n];
            in_s[0] = true;
            let (csr, _, _) = CsrMatrix::grounded_laplacian(&g, &in_s);
            let ic = IncompleteCholesky::factor(&csr).unwrap();
            assert_eq!(ic.shift(), 0.0, "M-matrix IC(0) must not need a shift");
            assert!(ic.nnz_lower() <= csr.nnz() / 2 + csr.dim());
        }
    }

    #[test]
    fn ic0_is_exact_on_trees() {
        // A tree's grounded Laplacian, ordered by the compact (BFS-free)
        // order, has a Cholesky factor with the same pattern as its lower
        // triangle only when eliminations create no fill between siblings;
        // on a path graph IC(0) IS the exact factor, so the preconditioner
        // solves the system in one application.
        let g = generators::path(40);
        let mut in_s = vec![false; 40];
        in_s[0] = true;
        let (csr, _, _) = CsrMatrix::grounded_laplacian(&g, &in_s);
        let ic = IncompleteCholesky::factor(&csr).unwrap();
        let mut rng = StdRng::seed_from_u64(49);
        let b: Vec<f64> = (0..csr.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut z = vec![0.0; csr.dim()];
        ic.apply(&b, &mut z);
        let mut az = vec![0.0; csr.dim()];
        csr.spmv(&z, &mut az);
        for (a, b) in az.iter().zip(&b) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn ic0_preconditioner_is_spd_approximation() {
        // z = M^{-1} r must satisfy zᵀr > 0 (SPD preconditioner) and be
        // closer to A^{-1} r than the Jacobi guess in the A-norm.
        let mut rng = StdRng::seed_from_u64(53);
        let g = generators::barabasi_albert(90, 2, &mut rng);
        let mut in_s = vec![false; 90];
        in_s[5] = true;
        let (csr, _, _) = CsrMatrix::grounded_laplacian(&g, &in_s);
        let (dense, _) = laplacian_submatrix_dense(&g, &in_s);
        let exact = dense.cholesky().unwrap();
        let ic = IncompleteCholesky::factor(&csr).unwrap();
        let d = csr.dim();
        let b: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut z = vec![0.0; d];
        ic.apply(&b, &mut z);
        let zb: f64 = z.iter().zip(&b).map(|(a, c)| a * c).sum();
        assert!(zb > 0.0);
        let x = exact.solve(&b);
        let err_ic: f64 = z.iter().zip(&x).map(|(a, c)| (a - c) * (a - c)).sum();
        let diag = csr.diagonal();
        let err_jac: f64 = b
            .iter()
            .zip(&diag)
            .zip(&x)
            .map(|((bi, di), xi)| (bi / di - xi) * (bi / di - xi))
            .sum();
        assert!(
            err_ic < err_jac,
            "IC(0) should beat Jacobi: {err_ic} vs {err_jac}"
        );
    }

    #[test]
    fn shift_fallback_rescues_an_indefinite_perturbation() {
        // Kill the diagonal dominance so the plain IC(0) pivot goes
        // non-positive, and check the Manteuffel escalation recovers.
        let g = generators::cycle(12);
        let mut in_s = vec![false; 12];
        in_s[0] = true;
        let (mut csr, _, _) = CsrMatrix::grounded_laplacian(&g, &in_s);
        for i in 0..csr.n {
            for idx in csr.row_ptr[i]..csr.row_ptr[i + 1] {
                if csr.col_idx[idx] as usize == i {
                    csr.vals[idx] *= 0.45; // below the off-diagonal mass
                }
            }
        }
        // Escalation may legitimately give up (Err) — it must not panic;
        // when it succeeds, a shift must have been applied.
        if let Ok(ic) = IncompleteCholesky::factor(&csr) {
            assert!(ic.shift() > 0.0, "must have shifted");
        }
    }
}
