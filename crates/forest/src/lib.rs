//! # cfcc-forest
//!
//! Uniform rooted spanning-forest machinery — the sampling engine behind
//! both ForestCFCM and SchurCFCM:
//!
//! * [`wilson`] — Algorithm 1 of the paper (`RandomForest`): loop-erased
//!   random walks with cycle popping, producing the parent map **and** a
//!   children-before-parents node order (the paper's `L_DFS`) in one pass.
//! * [`forest`] — the sampled [`forest::Forest`] structure: parent pointers,
//!   bottom-up order, root lookup, depths, and Euler-tour ancestor tests.
//! * [`estimators`] — streaming accumulators that turn forests into the
//!   paper's unbiased electrical estimators (DESIGN.md §5): BFS-path voltage
//!   prefix sums for `W·L_{-S}^{-1}`, all-ones row sums for `1ᵀL_{-S}^{-1}`,
//!   and per-node diagonal samples for `(L_{-S}^{-1})_{uu}`.
//! * [`rooted`] — rooted-probability counters `Ñ(ρ_u = t)` (Lemma 4.2),
//!   feeding SchurCFCM's Schur-complement estimation.
//! * [`bernstein`] — the empirical Bernstein bound (Lemma 3.6) for adaptive
//!   stopping.
//! * [`sampler`] — deterministic (seeded) serial/parallel batch driver with
//!   doubling batch sizes, mirroring the `2^{r'}` loop of Algorithms 2–5.

#![forbid(unsafe_code)]

pub mod bernstein;
pub mod estimators;
pub mod forest;
pub mod rooted;
pub mod sampler;
pub mod wilson;

pub use forest::Forest;
pub use sampler::{absorb_batch, ForestAccumulator, SamplerConfig};
pub use wilson::{sample_forest, sample_forest_into};
