//! The sampled rooted spanning forest and its derived structures.

use cfcc_graph::traversal::NO_PARENT;
use cfcc_graph::{Graph, Node};

/// A rooted spanning forest produced by [`crate::wilson`].
///
/// Roots have `parent == NO_PARENT`. `bottomup` lists every non-root node in
/// children-before-parents order (the paper's `L_DFS`), enabling O(n)
/// subtree aggregation without materializing child lists.
#[derive(Debug, Clone, Default)]
pub struct Forest {
    /// Parent pointer per node (`NO_PARENT` for roots).
    pub parent: Vec<Node>,
    /// Non-root nodes, children before parents.
    pub bottomup: Vec<Node>,
    /// Total random-walk steps taken while sampling (Lemma 3.7 cost).
    pub walk_steps: u64,
    /// Internal scratch for the sampler (kept to reuse its allocation).
    pub(crate) scratch_in_forest: Vec<bool>,
}

/// Euler-tour intervals over a forest: `a` is an ancestor-or-self of `u`
/// iff `tin[a] <= tin[u] < tout[a]`.
#[derive(Debug, Clone, Default)]
pub struct EulerTour {
    /// Entry times.
    pub tin: Vec<u32>,
    /// Exit times (exclusive).
    pub tout: Vec<u32>,
}

impl EulerTour {
    /// Ancestor-or-self test in O(1).
    #[inline]
    pub fn is_ancestor_or_self(&self, a: Node, u: Node) -> bool {
        self.tin[a as usize] <= self.tin[u as usize] && self.tin[u as usize] < self.tout[a as usize]
    }
}

/// Reusable buffers for [`Forest::euler_tour_into`].
#[derive(Debug, Clone, Default)]
pub struct EulerScratch {
    child_offsets: Vec<u32>,
    child_targets: Vec<Node>,
    stack: Vec<(Node, u32)>,
}

impl Forest {
    /// Number of nodes (root + non-root).
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Whether `u` is a root of this forest.
    #[inline]
    pub fn is_root(&self, u: Node) -> bool {
        self.parent[u as usize] == NO_PARENT
    }

    /// Iterate nodes top-down (parents before children; roots excluded).
    pub fn topdown(&self) -> impl Iterator<Item = Node> + '_ {
        self.bottomup.iter().rev().copied()
    }

    /// Root of every node's tree (roots map to themselves).
    pub fn root_of(&self) -> Vec<Node> {
        let n = self.num_nodes();
        let mut root = vec![NO_PARENT; n];
        for u in 0..n as Node {
            if self.is_root(u) {
                root[u as usize] = u;
            }
        }
        for x in self.topdown() {
            let p = self.parent[x as usize];
            root[x as usize] = root[p as usize];
        }
        root
    }

    /// Depth of every node in its tree (roots at 0).
    pub fn depths(&self) -> Vec<u32> {
        let n = self.num_nodes();
        let mut depth = vec![0u32; n];
        for x in self.topdown() {
            let p = self.parent[x as usize];
            depth[x as usize] = depth[p as usize] + 1;
        }
        depth
    }

    /// Compute the Euler tour into `tour`, reusing `scratch`.
    pub fn euler_tour_into(&self, tour: &mut EulerTour, scratch: &mut EulerScratch) {
        let n = self.num_nodes();
        // Children CSR via counting sort on parent pointers.
        let offs = &mut scratch.child_offsets;
        offs.clear();
        offs.resize(n + 1, 0);
        for &x in &self.bottomup {
            let p = self.parent[x as usize];
            offs[p as usize + 1] += 1;
        }
        for i in 0..n {
            offs[i + 1] += offs[i];
        }
        let targets = &mut scratch.child_targets;
        targets.clear();
        targets.resize(self.bottomup.len(), 0);
        {
            // cursor per parent — reuse a temporary copy of offsets
            let mut cursor: Vec<u32> = offs[..n].to_vec();
            for &x in &self.bottomup {
                let p = self.parent[x as usize] as usize;
                targets[cursor[p] as usize] = x;
                cursor[p] += 1;
            }
        }
        tour.tin.clear();
        tour.tin.resize(n, 0);
        tour.tout.clear();
        tour.tout.resize(n, 0);
        let stack = &mut scratch.stack;
        stack.clear();
        let mut time = 0u32;
        for r in 0..n as Node {
            if !self.is_root(r) {
                continue;
            }
            stack.push((r, offs[r as usize]));
            tour.tin[r as usize] = time;
            time += 1;
            while let Some(&mut (u, ref mut next_child)) = stack.last_mut() {
                if *next_child < offs[u as usize + 1] {
                    let c = targets[*next_child as usize];
                    *next_child += 1;
                    tour.tin[c as usize] = time;
                    time += 1;
                    stack.push((c, offs[c as usize]));
                } else {
                    tour.tout[u as usize] = time;
                    stack.pop();
                }
            }
        }
        debug_assert_eq!(time as usize, n);
    }

    /// Allocate-and-return Euler tour (tests / cold paths).
    pub fn euler_tour(&self) -> EulerTour {
        let mut tour = EulerTour::default();
        let mut scratch = EulerScratch::default();
        self.euler_tour_into(&mut tour, &mut scratch);
        tour
    }

    /// Panic unless this is a valid spanning forest of `g` rooted exactly at
    /// the `in_root` set (test support).
    pub fn validate(&self, g: &Graph, in_root: &[bool]) {
        let n = g.num_nodes();
        assert_eq!(self.parent.len(), n);
        let non_roots = in_root.iter().filter(|&&r| !r).count();
        assert_eq!(
            self.bottomup.len(),
            non_roots,
            "bottom-up covers all non-roots"
        );
        let mut seen = vec![false; n];
        for &x in &self.bottomup {
            assert!(!in_root[x as usize], "root in bottom-up order");
            assert!(!seen[x as usize], "duplicate in bottom-up order");
            seen[x as usize] = true;
            let p = self.parent[x as usize];
            assert_ne!(p, NO_PARENT, "non-root without parent");
            assert!(g.has_edge(x, p), "parent edge ({x},{p}) not in graph");
        }
        for u in 0..n as Node {
            if in_root[u as usize] {
                assert!(self.is_root(u), "root {u} has a parent");
            }
        }
        // Acyclic and rooted: walking up from any node terminates at a root
        // within n steps.
        for u in 0..n as Node {
            let mut i = u;
            let mut hops = 0;
            while !self.is_root(i) {
                i = self.parent[i as usize];
                hops += 1;
                assert!(hops <= n, "cycle detected from {u}");
            }
            assert!(in_root[i as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wilson::sample_forest;
    use cfcc_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixed_forest() -> Forest {
        // Tree: 0 is root; children 1,2; 1's children 3,4.
        // bottomup: leaves first.
        Forest {
            parent: vec![NO_PARENT, 0, 0, 1, 1],
            bottomup: vec![3, 4, 1, 2],
            walk_steps: 0,
            scratch_in_forest: Vec::new(),
        }
    }

    #[test]
    fn root_of_and_depths() {
        let f = fixed_forest();
        assert_eq!(f.root_of(), vec![0, 0, 0, 0, 0]);
        assert_eq!(f.depths(), vec![0, 1, 1, 2, 2]);
        assert!(f.is_root(0));
        assert!(!f.is_root(3));
    }

    #[test]
    fn euler_ancestor_checks() {
        let f = fixed_forest();
        let t = f.euler_tour();
        assert!(t.is_ancestor_or_self(0, 3));
        assert!(t.is_ancestor_or_self(1, 3));
        assert!(t.is_ancestor_or_self(3, 3));
        assert!(!t.is_ancestor_or_self(2, 3));
        assert!(!t.is_ancestor_or_self(3, 1));
        assert!(!t.is_ancestor_or_self(1, 2));
    }

    #[test]
    fn euler_on_multi_tree_forest() {
        // Roots 0 and 3; 1,2 under 0; 4 under 3.
        let f = Forest {
            parent: vec![NO_PARENT, 0, 1, NO_PARENT, 3],
            bottomup: vec![2, 1, 4],
            walk_steps: 0,
            scratch_in_forest: Vec::new(),
        };
        let t = f.euler_tour();
        assert!(t.is_ancestor_or_self(0, 2));
        assert!(!t.is_ancestor_or_self(0, 4));
        assert!(t.is_ancestor_or_self(3, 4));
        assert!(!t.is_ancestor_or_self(3, 1));
    }

    #[test]
    fn euler_matches_naive_on_random_forests() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::barabasi_albert(60, 2, &mut rng);
        let mut in_root = vec![false; 60];
        in_root[0] = true;
        in_root[20] = true;
        for _ in 0..5 {
            let f = sample_forest(&g, &in_root, &mut rng);
            let t = f.euler_tour();
            // naive ancestor check by walking up
            for u in 0..60u32 {
                let mut anc = [false; 60];
                let mut i = u;
                loop {
                    anc[i as usize] = true;
                    if f.is_root(i) {
                        break;
                    }
                    i = f.parent[i as usize];
                }
                for a in 0..60u32 {
                    assert_eq!(t.is_ancestor_or_self(a, u), anc[a as usize], "a={a} u={u}");
                }
            }
        }
    }

    #[test]
    fn depths_bounded_by_tree_size() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = generators::cycle(30);
        let mut in_root = vec![false; 30];
        in_root[7] = true;
        let f = sample_forest(&g, &in_root, &mut rng);
        let d = f.depths();
        assert!(d.iter().all(|&x| (x as usize) < 30));
        assert_eq!(d[7], 0);
    }
}
