//! Wilson's algorithm with a root set (paper Algorithm 1, `RandomForest`).
//!
//! Samples a uniformly random spanning forest of `G` rooted at `S`: simulate
//! a random walk from each unprocessed node, overwriting parent pointers as
//! the walk moves (implicit loop erasure / cycle popping), and when the walk
//! hits the current forest, retrace the surviving path and freeze it.
//!
//! The visit order is recorded so that reversing it yields a
//! children-before-parents (bottom-up) order over all non-root nodes — the
//! paper's `L_DFS` — which the estimators use for O(n) subtree aggregation.

use crate::forest::Forest;
use cfcc_graph::traversal::NO_PARENT;
use cfcc_graph::{Graph, Node};
use rand::Rng;

/// Sample a rooted spanning forest, reusing the buffers of `out`.
///
/// `in_root[u]` marks the root set `S`; every non-root node must have degree
/// ≥ 1 and be able to reach `S` (guaranteed when `G` is connected and `S`
/// non-empty). The expected running time is `Tr((I − P_{-S})^{-1})` steps
/// (Lemma 3.7).
pub fn sample_forest_into<R: Rng>(g: &Graph, in_root: &[bool], rng: &mut R, out: &mut Forest) {
    let n = g.num_nodes();
    assert_eq!(in_root.len(), n);
    let parent = &mut out.parent;
    parent.clear();
    parent.resize(n, NO_PARENT);
    let order = &mut out.bottomup;
    order.clear();

    // `in_forest` doubles as the "frozen" marker; roots start frozen.
    let in_forest = &mut out.scratch_in_forest;
    in_forest.clear();
    in_forest.extend_from_slice(in_root);

    let mut steps: u64 = 0;
    for start in 0..n as Node {
        if in_forest[start as usize] {
            continue;
        }
        debug_assert!(g.degree(start) > 0, "non-root node {start} has no edges");
        // Phase 1: random walk with parent overwrites (cycle popping).
        let mut i = start;
        while !in_forest[i as usize] {
            let d = g.degree(i);
            let next = g.neighbor(i, rng.gen_range(0..d));
            parent[i as usize] = next;
            i = next;
            steps += 1;
        }
        // Phase 2: retrace the surviving (loop-erased) path and freeze it.
        let chain_start = order.len();
        let mut i = start;
        while !in_forest[i as usize] {
            in_forest[i as usize] = true;
            order.push(i);
            i = parent[i as usize];
        }
        // Chain is walked child → ancestor; flip it so the global order is
        // ancestors-before-descendants (top-down) at this point.
        order[chain_start..].reverse();
    }
    // Top-down → bottom-up: children before parents, the paper's L_DFS.
    order.reverse();
    out.walk_steps = steps;
    // Roots keep NO_PARENT; clear any pointer a popped cycle left behind on
    // nodes that ended as... (cannot happen: every non-root node is frozen
    // with its final parent; roots were never walked from).
    debug_assert!(
        (0..n).all(|u| in_root[u] == (parent[u] == NO_PARENT)),
        "roots and only roots lack parents"
    );
}

/// Convenience wrapper allocating a fresh [`Forest`].
pub fn sample_forest<R: Rng>(g: &Graph, in_root: &[bool], rng: &mut R) -> Forest {
    let mut f = Forest::default();
    sample_forest_into(g, in_root, rng, &mut f);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use cfcc_util::FxHashMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn root_mask(n: usize, roots: &[Node]) -> Vec<bool> {
        let mut m = vec![false; n];
        for &r in roots {
            m[r as usize] = true;
        }
        m
    }

    #[test]
    fn forest_structure_is_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::barabasi_albert(100, 2, &mut rng);
        let in_root = root_mask(100, &[0, 17, 42]);
        for _ in 0..20 {
            let f = sample_forest(&g, &in_root, &mut rng);
            f.validate(&g, &in_root);
        }
    }

    #[test]
    fn bottomup_order_has_children_before_parents() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::grid(6, 6);
        let in_root = root_mask(36, &[0]);
        for _ in 0..10 {
            let f = sample_forest(&g, &in_root, &mut rng);
            let mut seen = [false; 36];
            for &x in &f.bottomup {
                let p = f.parent[x as usize];
                // children first: a node's parent must not have been seen yet
                if p != NO_PARENT {
                    assert!(!seen[p as usize], "parent {p} before child {x}");
                }
                seen[x as usize] = true;
            }
            assert_eq!(f.bottomup.len(), 35);
        }
    }

    #[test]
    fn walk_steps_recorded() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::path(10);
        let f = sample_forest(&g, &root_mask(10, &[0]), &mut rng);
        assert!(f.walk_steps >= 9, "at least one step per non-root node");
    }

    #[test]
    fn uniform_over_spanning_trees_of_k3() {
        // K3 rooted at {0} has exactly 3 spanning trees; the sampler must be
        // uniform (matrix-forest theorem: N({0}) = det L_{-0} = 3).
        let g = generators::complete(3);
        let in_root = root_mask(3, &[0]);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts: FxHashMap<(Node, Node), u32> = FxHashMap::default();
        let trials = 30_000;
        for _ in 0..trials {
            let f = sample_forest(&g, &in_root, &mut rng);
            *counts.entry((f.parent[1], f.parent[2])).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 3, "K3 has 3 rooted trees: {counts:?}");
        for (&tree, &c) in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "tree {tree:?} freq {freq}");
        }
    }

    #[test]
    fn uniform_over_forests_with_two_roots() {
        // K3 rooted at {0,1}: node 2 picks parent 0 or 1 with prob 1/2
        // (N({0,1}) = det L_{-{0,1}} = 2).
        let g = generators::complete(3);
        let in_root = root_mask(3, &[0, 1]);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut to0 = 0u32;
        let trials = 20_000;
        for _ in 0..trials {
            let f = sample_forest(&g, &in_root, &mut rng);
            if f.parent[2] == 0 {
                to0 += 1;
            }
        }
        let freq = to0 as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn uniform_over_spanning_trees_of_cycle4() {
        // C4 rooted at {0}: 4 spanning trees (remove any one edge).
        let g = generators::cycle(4);
        let in_root = root_mask(4, &[0]);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts: FxHashMap<(Node, Node, Node), u32> = FxHashMap::default();
        let trials = 40_000;
        for _ in 0..trials {
            let f = sample_forest(&g, &in_root, &mut rng);
            *counts
                .entry((f.parent[1], f.parent[2], f.parent[3]))
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 4);
        for &c in counts.values() {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn all_nodes_roots_gives_empty_forest() {
        let g = generators::cycle(5);
        let in_root = vec![true; 5];
        let mut rng = SmallRng::seed_from_u64(7);
        let f = sample_forest(&g, &in_root, &mut rng);
        assert!(f.bottomup.is_empty());
        assert_eq!(f.walk_steps, 0);
    }

    #[test]
    fn reuse_buffers_across_samples() {
        let g = generators::barabasi_albert(50, 2, &mut SmallRng::seed_from_u64(8));
        let in_root = root_mask(50, &[3]);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut f = Forest::default();
        for _ in 0..5 {
            sample_forest_into(&g, &in_root, &mut rng, &mut f);
            f.validate(&g, &in_root);
            assert_eq!(f.bottomup.len(), 49);
        }
    }
}
