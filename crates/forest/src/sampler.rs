//! Deterministic batch sampling driver.
//!
//! Mirrors the `for r' = 1..⌈log₂ r⌉ / for i = 1..2^{r'} in parallel` loops
//! of Algorithms 2–5: callers absorb forests in doubling batches and decide
//! after each batch whether the empirical-Bernstein stop fires.
//!
//! Determinism: every forest's RNG is seeded from `(seed, global index)`
//! through SplitMix64, so results are identical for any thread count.

use crate::forest::Forest;
use crate::wilson::sample_forest_into;
use cfcc_graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Accumulators that consume sampled forests.
pub trait ForestAccumulator: Send {
    /// Absorb one forest.
    fn absorb(&mut self, forest: &Forest);
    /// Merge a sibling accumulator produced by [`ForestAccumulator::fresh`].
    fn merge(&mut self, other: Self);
    /// An empty accumulator with the same configuration.
    fn fresh(&self) -> Self;
    /// Number of forests absorbed.
    fn count(&self) -> u64;
}

/// Sampling controls.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Master seed; every forest derives its RNG from `(seed, index)`.
    pub seed: u64,
    /// Worker threads (1 = serial). Results do not depend on this.
    pub threads: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            threads: 1,
        }
    }
}

/// SplitMix64 — the standard 64-bit seed mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn forest_rng(seed: u64, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(index.wrapping_add(1))))
}

/// Sample `batch` forests with global indices `start_index..start_index+batch`
/// and absorb them into `acc`. With `cfg.threads > 1` the index range is
/// split into contiguous chunks, each absorbed into a fresh accumulator and
/// merged back in chunk order. The same forests are sampled for any thread
/// count (seeding is by global index); linear accumulations are identical,
/// while merged variance accumulators may differ from the serial path only
/// in floating-point rounding.
pub fn absorb_batch<A: ForestAccumulator>(
    g: &Graph,
    in_root: &[bool],
    start_index: u64,
    batch: u64,
    cfg: &SamplerConfig,
    acc: &mut A,
) {
    if batch == 0 {
        return;
    }
    let threads = cfg.threads.max(1).min(batch as usize);
    if threads == 1 {
        let mut forest = Forest::default();
        for i in 0..batch {
            let mut rng = forest_rng(cfg.seed, start_index + i);
            sample_forest_into(g, in_root, &mut rng, &mut forest);
            acc.absorb(&forest);
        }
        return;
    }
    // Contiguous chunking keeps merge order deterministic.
    let chunk = batch.div_ceil(threads as u64);
    let mut partials: Vec<A> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for tix in 0..threads as u64 {
            let lo = start_index + tix * chunk;
            let hi = (lo + chunk).min(start_index + batch);
            if lo >= hi {
                break;
            }
            let mut local = acc.fresh();
            let seed = cfg.seed;
            handles.push(scope.spawn(move || {
                let mut forest = Forest::default();
                for i in lo..hi {
                    let mut rng = forest_rng(seed, i);
                    sample_forest_into(g, in_root, &mut rng, &mut forest);
                    local.absorb(&forest);
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("sampler worker panicked"));
        }
    });
    for p in partials {
        acc.merge(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;

    /// Toy accumulator: tallies parent-pointer sums (order-insensitive) and
    /// a sequence-sensitive checksum to verify deterministic merge order.
    #[derive(Debug, Clone, Default)]
    struct Tally {
        forests: u64,
        parent_sum: u64,
        checksum: u64,
    }

    impl ForestAccumulator for Tally {
        fn absorb(&mut self, f: &Forest) {
            self.forests += 1;
            let s: u64 = f
                .bottomup
                .iter()
                .map(|&x| f.parent[x as usize] as u64 + 1)
                .sum();
            self.parent_sum += s;
            self.checksum = splitmix64(self.checksum ^ s);
        }
        fn merge(&mut self, other: Self) {
            self.forests += other.forests;
            self.parent_sum += other.parent_sum;
            // order-sensitive combine
            self.checksum = splitmix64(self.checksum ^ other.checksum);
        }
        fn fresh(&self) -> Self {
            Self::default()
        }
        fn count(&self) -> u64 {
            self.forests
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = generators::barabasi_albert(50, 2, &mut SmallRng::seed_from_u64(0));
        let mut in_root = vec![false; 50];
        in_root[0] = true;
        let cfg = SamplerConfig {
            seed: 42,
            threads: 1,
        };
        let mut a = Tally::default();
        absorb_batch(&g, &in_root, 0, 64, &cfg, &mut a);
        let mut b = Tally::default();
        absorb_batch(&g, &in_root, 0, 64, &cfg, &mut b);
        assert_eq!(a.parent_sum, b.parent_sum);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.count(), 64);
    }

    #[test]
    fn different_seeds_differ() {
        let g = generators::barabasi_albert(50, 2, &mut SmallRng::seed_from_u64(0));
        let mut in_root = vec![false; 50];
        in_root[3] = true;
        let mut a = Tally::default();
        absorb_batch(
            &g,
            &in_root,
            0,
            32,
            &SamplerConfig {
                seed: 1,
                threads: 1,
            },
            &mut a,
        );
        let mut b = Tally::default();
        absorb_batch(
            &g,
            &in_root,
            0,
            32,
            &SamplerConfig {
                seed: 2,
                threads: 1,
            },
            &mut b,
        );
        assert_ne!(a.parent_sum, b.parent_sum);
    }

    #[test]
    fn batch_indices_compose() {
        // Absorbing [0,32) then [32,64) equals absorbing [0,64).
        let g = generators::cycle(40);
        let mut in_root = vec![false; 40];
        in_root[11] = true;
        let cfg = SamplerConfig {
            seed: 7,
            threads: 1,
        };
        let mut split = Tally::default();
        absorb_batch(&g, &in_root, 0, 32, &cfg, &mut split);
        absorb_batch(&g, &in_root, 32, 32, &cfg, &mut split);
        let mut whole = Tally::default();
        absorb_batch(&g, &in_root, 0, 64, &cfg, &mut whole);
        assert_eq!(split.parent_sum, whole.parent_sum);
        assert_eq!(split.checksum, whole.checksum);
    }

    #[test]
    fn parallel_sums_match_serial() {
        let g = generators::barabasi_albert(60, 3, &mut SmallRng::seed_from_u64(5));
        let mut in_root = vec![false; 60];
        in_root[0] = true;
        in_root[9] = true;
        let mut serial = Tally::default();
        absorb_batch(
            &g,
            &in_root,
            0,
            40,
            &SamplerConfig {
                seed: 9,
                threads: 1,
            },
            &mut serial,
        );
        let mut par = Tally::default();
        absorb_batch(
            &g,
            &in_root,
            0,
            40,
            &SamplerConfig {
                seed: 9,
                threads: 4,
            },
            &mut par,
        );
        // Order-insensitive quantities must match exactly.
        assert_eq!(serial.parent_sum, par.parent_sum);
        assert_eq!(serial.count(), par.count());
    }

    #[test]
    fn zero_batch_is_noop() {
        let g = generators::cycle(10);
        let in_root = {
            let mut m = vec![false; 10];
            m[0] = true;
            m
        };
        let mut a = Tally::default();
        absorb_batch(&g, &in_root, 0, 0, &SamplerConfig::default(), &mut a);
        assert_eq!(a.count(), 0);
    }
}
