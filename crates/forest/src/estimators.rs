//! Forest-based electrical estimators (DESIGN.md §5).
//!
//! Per sampled forest with root set `S` (or `S ∪ T`), this module extracts:
//!
//! * **Sketched voltage rows** `Y ≈ W · L_{-S}^{-1}` — per BFS-tree edge
//!   `(x, p_x)` it accumulates the signed subtree sums
//!   `δ_j(x) = [π_x = p_x]·sw_j(x) − [π_{p_x} = x]·sw_j(p_x)`, whose
//!   expectation is the weighted current through that edge (Lemma 3.2 +
//!   linearity); BFS-path prefix sums then telescope to voltages
//!   (Lemma 3.3 with the fixed path `P_{v,S}` = BFS path).
//! * **Diagonal samples** `X_f(u)` with `E[X_f(u)] = (L_{-S}^{-1})_{uu}`:
//!   along `u`'s BFS path, count forest-path traversals of each edge in both
//!   directions, using O(1) Euler-tour ancestor tests. Welford accumulators
//!   retain mean and variance for the empirical-Bernstein stop (Lemma 3.6).
//! * **First-phase samples** `x_u = X_f(u) − scale · Φ̂₁(u)` implementing
//!   Lemma 3.5's reduction of `L†_uu` to `L_{-s}^{-1}` quantities (the
//!   shared `1ᵀL^{-1}1/n²` term is rank-preserving and omitted, as in
//!   Algorithm 3).
//! * **Rooted counts** for the Schur complement (Lemma 4.2) when an
//!   auxiliary root index is supplied.

use crate::forest::{EulerScratch, EulerTour, Forest};
use crate::rooted::{RootIndex, RootedCounts};
use crate::sampler::ForestAccumulator;
use cfcc_graph::traversal::{bfs_from_set, NO_PARENT};
use cfcc_graph::{Graph, Node};
use cfcc_linalg::jl::JlSketch;
use cfcc_util::stats::WelfordVec;
use std::sync::Arc;

/// What the accumulator's per-node Welford samples estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiagMode {
    /// `z_u ≈ (L_{-S}^{-1})_{uu}` (Algorithms 2 and 4).
    Diagonal,
    /// `x_u ≈ (L_{-s}^{-1})_{uu} − scale · 1ᵀL_{-s}^{-1}e_u`
    /// (Algorithm 3 / 5 first phase, `scale = 2/n`).
    FirstPhase {
        /// Multiplier on the all-ones voltage term (`2/n` in the paper).
        scale: f64,
    },
}

/// Immutable sampling context shared by accumulator clones.
#[derive(Debug)]
struct Ctx {
    n: usize,
    w: usize,
    in_root: Vec<bool>,
    bfs_parent: Vec<Node>,
    bfs_order: Vec<Node>,
    bfs_depth: Vec<u32>,
    sketch: Option<JlSketch>,
    mode: DiagMode,
    root_index: Option<Arc<RootIndex>>,
}

/// Streaming estimator state; implements [`ForestAccumulator`].
#[derive(Debug)]
pub struct ElectricalAccumulator {
    ctx: Arc<Ctx>,
    num_forests: u64,
    total_walk_steps: u64,
    /// `n × w` node-major accumulated edge deltas (empty when no sketch).
    edge_acc: Vec<f64>,
    /// Per-node Welford over diagonal (or first-phase) samples.
    diag: WelfordVec,
    /// Per-node max |sample| — empirical range for the Bernstein stop.
    diag_sup: Vec<f64>,
    rooted: Option<RootedCounts>,
    // ---- scratch reused across forests ----
    sw: Vec<f64>,
    ssize: Vec<f64>,
    yones: Vec<f64>,
    xdiag: Vec<f64>,
    root_scratch: Vec<Node>,
    tour: EulerTour,
    escratch: EulerScratch,
}

impl ElectricalAccumulator {
    /// Build an accumulator for forests of `g` rooted at `in_root`.
    ///
    /// * `sketch` — optional JL sketch over node ids (only non-root
    ///   coordinates are ever read).
    /// * `mode` — diagonal or first-phase samples.
    /// * `root_index` — track rooted counts for these roots (SchurDelta).
    pub fn new(
        g: &Graph,
        in_root: &[bool],
        sketch: Option<JlSketch>,
        mode: DiagMode,
        root_index: Option<Arc<RootIndex>>,
    ) -> Self {
        let n = g.num_nodes();
        assert_eq!(in_root.len(), n);
        let roots: Vec<Node> = (0..n as Node).filter(|&u| in_root[u as usize]).collect();
        assert!(!roots.is_empty(), "root set must be non-empty");
        let bfs = bfs_from_set(g, &roots);
        assert_eq!(
            bfs.order.len(),
            n,
            "graph must be connected to the root set"
        );
        if let Some(q) = &sketch {
            assert_eq!(q.dim(), n, "sketch must span all node ids");
        }
        let w = sketch.as_ref().map_or(0, |q| q.width());
        let ctx = Arc::new(Ctx {
            n,
            w,
            in_root: in_root.to_vec(),
            bfs_parent: bfs.parent,
            bfs_order: bfs.order,
            bfs_depth: bfs.depth,
            sketch,
            mode,
            root_index,
        });
        Self::from_ctx(ctx)
    }

    fn from_ctx(ctx: Arc<Ctx>) -> Self {
        let n = ctx.n;
        let w = ctx.w;
        let rooted = ctx
            .root_index
            .as_ref()
            .map(|idx| RootedCounts::new(n, idx.clone()));
        let first_phase = matches!(ctx.mode, DiagMode::FirstPhase { .. });
        Self {
            num_forests: 0,
            total_walk_steps: 0,
            edge_acc: vec![0.0; n * w],
            diag: WelfordVec::new(n),
            diag_sup: vec![0.0; n],
            rooted,
            sw: vec![0.0; n * w],
            ssize: if first_phase {
                vec![0.0; n]
            } else {
                Vec::new()
            },
            yones: if first_phase {
                vec![0.0; n]
            } else {
                Vec::new()
            },
            xdiag: vec![0.0; n],
            root_scratch: Vec::new(),
            tour: EulerTour::default(),
            escratch: EulerScratch::default(),
            ctx,
        }
    }

    /// Forests absorbed so far (`Ñ` in the paper).
    pub fn num_forests(&self) -> u64 {
        self.num_forests
    }

    /// Total random-walk steps over all forests (the Lemma 3.7 cost metric).
    pub fn total_walk_steps(&self) -> u64 {
        self.total_walk_steps
    }

    /// Sketch width `w` (0 when not sketching).
    pub fn width(&self) -> usize {
        self.ctx.w
    }

    /// Mean diagonal/first-phase estimate per node (roots are 0).
    pub fn diag_means(&self) -> &[f64] {
        self.diag.means()
    }

    /// Welford variance of node `u`'s samples.
    pub fn diag_variance(&self, u: Node) -> f64 {
        self.diag.variance_at(u as usize)
    }

    /// Empirical sample range bound for node `u` (max |sample| seen).
    pub fn diag_sup(&self, u: Node) -> f64 {
        self.diag_sup[u as usize]
    }

    /// BFS depth of `u` from the root set (the theoretical sample bound).
    pub fn bfs_depth(&self, u: Node) -> u32 {
        self.ctx.bfs_depth[u as usize]
    }

    /// Rooted counts (SchurDelta), if tracked.
    pub fn rooted(&self) -> Option<&RootedCounts> {
        self.rooted.as_ref()
    }

    /// The sketched voltage matrix `Y ≈ W L_{-S}^{-1}` as an `n × w`
    /// node-major buffer: `column(u) = Y·e_u`. Root rows are zero.
    pub fn y_matrix(&self) -> YMatrix {
        let n = self.ctx.n;
        let w = self.ctx.w;
        assert!(w > 0, "no sketch configured");
        assert!(self.num_forests > 0, "no forests absorbed");
        let inv = 1.0 / self.num_forests as f64;
        let mut data = vec![0.0f64; n * w];
        for &u in &self.ctx.bfs_order {
            let p = self.ctx.bfs_parent[u as usize];
            if p == NO_PARENT {
                continue; // root: zero voltage
            }
            let (dst, src) = split_rows(&mut data, u as usize, p as usize, w);
            let acc = &self.edge_acc[u as usize * w..u as usize * w + w];
            for j in 0..w {
                dst[j] = src[j] + acc[j] * inv;
            }
        }
        YMatrix { data, w }
    }

    fn absorb_inner(&mut self, f: &Forest) {
        let ctx = &*self.ctx;
        let n = ctx.n;
        let w = ctx.w;
        debug_assert_eq!(f.parent.len(), n);
        self.num_forests += 1;
        self.total_walk_steps += f.walk_steps;

        // ---- sketched subtree sums and per-BFS-edge deltas ----
        if let Some(q) = &ctx.sketch {
            for &x in &f.bottomup {
                let xi = x as usize;
                self.sw[xi * w..xi * w + w].copy_from_slice(q.column(xi));
            }
            for &x in &f.bottomup {
                let p = f.parent[x as usize];
                if !f.is_root(p) {
                    let (dst, src) = split_rows(&mut self.sw, p as usize, x as usize, w);
                    for j in 0..w {
                        dst[j] += src[j];
                    }
                }
            }
            for &x in &f.bottomup {
                let xi = x as usize;
                let pb = ctx.bfs_parent[xi];
                debug_assert_ne!(pb, NO_PARENT);
                if f.parent[xi] == pb {
                    // edge_acc and sw are disjoint fields: borrows coexist.
                    let dst = &mut self.edge_acc[xi * w..xi * w + w];
                    let swx = &self.sw[xi * w..xi * w + w];
                    for j in 0..w {
                        dst[j] += swx[j];
                    }
                }
                let pbi = pb as usize;
                if !ctx.in_root[pbi] && f.parent[pbi] == x {
                    let swp = &self.sw[pbi * w..pbi * w + w];
                    let dst = &mut self.edge_acc[xi * w..xi * w + w];
                    for j in 0..w {
                        dst[j] -= swp[j];
                    }
                }
            }
        }

        // ---- first-phase: subtree sizes and all-ones voltage prefix sums ----
        let first_scale = match ctx.mode {
            DiagMode::FirstPhase { scale } => {
                for &x in &f.bottomup {
                    self.ssize[x as usize] = 1.0;
                }
                for &x in &f.bottomup {
                    let p = f.parent[x as usize];
                    if !f.is_root(p) {
                        self.ssize[p as usize] += self.ssize[x as usize];
                    }
                }
                // prefix sums along BFS order
                for &u in &ctx.bfs_order {
                    let ui = u as usize;
                    let pb = ctx.bfs_parent[ui];
                    if pb == NO_PARENT {
                        self.yones[ui] = 0.0;
                        continue;
                    }
                    let mut delta = 0.0;
                    if f.parent[ui] == pb {
                        delta += self.ssize[ui];
                    }
                    let pbi = pb as usize;
                    if !ctx.in_root[pbi] && f.parent[pbi] == u {
                        delta -= self.ssize[pbi];
                    }
                    self.yones[ui] = self.yones[pbi] + delta;
                }
                Some(scale)
            }
            DiagMode::Diagonal => None,
        };

        // ---- diagonal samples via Euler-tour ancestor tests ----
        f.euler_tour_into(&mut self.tour, &mut self.escratch);
        for &u in &f.bottomup {
            let ui = u as usize;
            let mut x_acc = 0i64;
            let mut a = u;
            while !ctx.in_root[a as usize] {
                let b = ctx.bfs_parent[a as usize];
                debug_assert_ne!(b, NO_PARENT);
                if f.parent[a as usize] == b && self.tour.is_ancestor_or_self(a, u) {
                    x_acc += 1;
                }
                if !ctx.in_root[b as usize]
                    && f.parent[b as usize] == a
                    && self.tour.is_ancestor_or_self(b, u)
                {
                    x_acc -= 1;
                }
                a = b;
            }
            let mut sample = x_acc as f64;
            if let Some(scale) = first_scale {
                sample -= scale * self.yones[ui];
            }
            self.xdiag[ui] = sample;
            let abs = sample.abs();
            if abs > self.diag_sup[ui] {
                self.diag_sup[ui] = abs;
            }
        }
        for r in 0..n {
            if ctx.in_root[r] {
                self.xdiag[r] = 0.0;
            }
        }
        self.diag.push(&self.xdiag);

        // ---- rooted counts for the Schur complement ----
        if let Some(counts) = &mut self.rooted {
            let root_scratch = &mut self.root_scratch;
            root_scratch.clear();
            root_scratch.resize(n, NO_PARENT);
            for r in 0..n as Node {
                if f.is_root(r) {
                    root_scratch[r as usize] = r;
                }
            }
            for x in f.topdown() {
                let p = f.parent[x as usize];
                root_scratch[x as usize] = root_scratch[p as usize];
            }
            for &x in &f.bottomup {
                counts.record(x, root_scratch[x as usize]);
            }
        }
    }
}

/// Borrow two distinct `w`-rows of a node-major buffer (`dst = row a`,
/// `src = row b`). Requires `a != b`.
#[inline]
fn split_rows(buf: &mut [f64], a: usize, b: usize, w: usize) -> (&mut [f64], &[f64]) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = buf.split_at_mut(b * w);
        (&mut lo[a * w..a * w + w], &hi[..w])
    } else {
        let (lo, hi) = buf.split_at_mut(a * w);
        let dst = &mut hi[..w];
        (dst, &lo[b * w..b * w + w])
    }
}

impl ForestAccumulator for ElectricalAccumulator {
    fn absorb(&mut self, forest: &Forest) {
        self.absorb_inner(forest);
    }

    fn merge(&mut self, other: Self) {
        assert!(
            Arc::ptr_eq(&self.ctx, &other.ctx),
            "merging incompatible accumulators"
        );
        self.num_forests += other.num_forests;
        self.total_walk_steps += other.total_walk_steps;
        for (a, b) in self.edge_acc.iter_mut().zip(&other.edge_acc) {
            *a += b;
        }
        self.diag.merge(&other.diag);
        for (a, &b) in self.diag_sup.iter_mut().zip(&other.diag_sup) {
            if b > *a {
                *a = b;
            }
        }
        if let (Some(mine), Some(theirs)) = (&mut self.rooted, other.rooted) {
            mine.merge(theirs);
        }
    }

    fn fresh(&self) -> Self {
        Self::from_ctx(self.ctx.clone())
    }

    fn count(&self) -> u64 {
        self.num_forests
    }
}

/// Node-major sketched voltage matrix (`n` columns of width `w`).
#[derive(Debug, Clone)]
pub struct YMatrix {
    data: Vec<f64>,
    w: usize,
}

impl YMatrix {
    /// Sketch width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// The sketched column for node `u` (`Y e_u ∈ R^w`).
    #[inline]
    pub fn column(&self, u: Node) -> &[f64] {
        &self.data[u as usize * self.w..(u as usize + 1) * self.w]
    }

    /// Mutable column access (SchurDelta adds correction terms in place).
    #[inline]
    pub fn column_mut(&mut self, u: Node) -> &mut [f64] {
        &mut self.data[u as usize * self.w..(u as usize + 1) * self.w]
    }

    /// `‖Y e_u‖²` — the JL estimate of `‖L_{-S}^{-1} e_u‖²`.
    #[inline]
    pub fn column_norm_sq(&self, u: Node) -> f64 {
        cfcc_linalg::vector::norm2_sq(self.column(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{absorb_batch, SamplerConfig};
    use cfcc_graph::generators;
    use cfcc_linalg::laplacian::laplacian_submatrix_dense;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mask(n: usize, roots: &[Node]) -> Vec<bool> {
        let mut m = vec![false; n];
        for &r in roots {
            m[r as usize] = true;
        }
        m
    }

    #[test]
    fn diagonal_estimates_match_dense() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let in_root = mask(30, &[0, 9]);
        let (sub, keep) = laplacian_submatrix_dense(&g, &in_root);
        let inv = sub.cholesky().unwrap().inverse();
        let mut acc = ElectricalAccumulator::new(&g, &in_root, None, DiagMode::Diagonal, None);
        let cfg = SamplerConfig {
            seed: 77,
            threads: 1,
        };
        absorb_batch(&g, &in_root, 0, 30_000, &cfg, &mut acc);
        for (ci, &u) in keep.iter().enumerate() {
            let expect = inv.get(ci, ci);
            let got = acc.diag_means()[u as usize];
            let se = (acc.diag_variance(u) / acc.num_forests() as f64).sqrt();
            assert!(
                (got - expect).abs() < 5.0 * se + 0.02,
                "u={u}: got {got} expect {expect} (se {se})"
            );
        }
    }

    #[test]
    fn sketched_voltages_match_dense() {
        let mut rng = SmallRng::seed_from_u64(37);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let n = g.num_nodes();
        let in_root = mask(n, &[3]);
        let (sub, keep) = laplacian_submatrix_dense(&g, &in_root);
        let inv = sub.cholesky().unwrap().inverse();
        let sketch = JlSketch::sample(6, n, &mut rng);
        let sketch_copy = sketch.clone();
        let mut acc =
            ElectricalAccumulator::new(&g, &in_root, Some(sketch), DiagMode::Diagonal, None);
        let cfg = SamplerConfig {
            seed: 99,
            threads: 1,
        };
        absorb_batch(&g, &in_root, 0, 40_000, &cfg, &mut acc);
        let y = acc.y_matrix();
        // expected: (W L^{-1})_{j,u} = Σ_v W_{jv} inv[cv][cu]
        for (cu, &u) in keep.iter().enumerate() {
            let col = y.column(u);
            for (j, &got) in col.iter().enumerate().take(6) {
                let mut expect = 0.0;
                for (cv, &v) in keep.iter().enumerate() {
                    expect += sketch_copy.column(v as usize)[j] * inv.get(cv, cu);
                }
                assert!(
                    (got - expect).abs() < 0.05,
                    "u={u} j={j}: got {got} expect {expect}"
                );
            }
        }
    }

    #[test]
    fn first_phase_matches_dense_reduction() {
        // x_u should estimate (L_{-s}^{-1})_{uu} − (2/n)·1ᵀL_{-s}^{-1}e_u.
        let mut rng = SmallRng::seed_from_u64(41);
        let g = generators::barabasi_albert(24, 2, &mut rng);
        let n = g.num_nodes();
        let s = g.max_degree_node().unwrap();
        let in_root = mask(n, &[s]);
        let (sub, keep) = laplacian_submatrix_dense(&g, &in_root);
        let inv = sub.cholesky().unwrap().inverse();
        let scale = 2.0 / n as f64;
        let mut acc =
            ElectricalAccumulator::new(&g, &in_root, None, DiagMode::FirstPhase { scale }, None);
        let cfg = SamplerConfig {
            seed: 1234,
            threads: 1,
        };
        absorb_batch(&g, &in_root, 0, 40_000, &cfg, &mut acc);
        for (cu, &u) in keep.iter().enumerate() {
            let ones_col: f64 = (0..keep.len()).map(|cv| inv.get(cv, cu)).sum();
            let expect = inv.get(cu, cu) - scale * ones_col;
            let got = acc.diag_means()[u as usize];
            let se = (acc.diag_variance(u) / acc.num_forests() as f64).sqrt();
            assert!(
                (got - expect).abs() < 5.0 * se + 0.03,
                "u={u}: got {got} expect {expect} se {se}"
            );
        }
    }

    #[test]
    fn parallel_merge_matches_serial_means() {
        let mut rng = SmallRng::seed_from_u64(43);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let in_root = mask(40, &[0]);
        let build = || ElectricalAccumulator::new(&g, &in_root, None, DiagMode::Diagonal, None);
        let mut serial = build();
        absorb_batch(
            &g,
            &in_root,
            0,
            512,
            &SamplerConfig {
                seed: 5,
                threads: 1,
            },
            &mut serial,
        );
        let mut par = build();
        absorb_batch(
            &g,
            &in_root,
            0,
            512,
            &SamplerConfig {
                seed: 5,
                threads: 3,
            },
            &mut par,
        );
        assert_eq!(serial.num_forests(), par.num_forests());
        for u in 0..40 {
            assert!(
                (serial.diag_means()[u] - par.diag_means()[u]).abs() < 1e-9,
                "node {u}"
            );
        }
    }

    #[test]
    fn rooted_tracking_through_accumulator() {
        let mut rng = SmallRng::seed_from_u64(47);
        let g = generators::barabasi_albert(20, 2, &mut rng);
        let t_nodes = vec![1u32, 2u32];
        let in_root = mask(20, &[0, 1, 2]);
        let idx = Arc::new(RootIndex::new(20, &t_nodes));
        let mut acc = ElectricalAccumulator::new(&g, &in_root, None, DiagMode::Diagonal, Some(idx));
        absorb_batch(&g, &in_root, 0, 500, &SamplerConfig::default(), &mut acc);
        let rooted = acc.rooted().unwrap();
        // Probabilities per node sum to ≤ 1 (the remainder roots in S).
        for u in 0..20u32 {
            if in_root[u as usize] {
                continue;
            }
            let total: f64 = rooted
                .probabilities(u, acc.num_forests())
                .iter()
                .map(|&(_, p)| p)
                .sum();
            assert!((0.0..=1.0 + 1e-9).contains(&total), "u={u} total {total}");
        }
    }

    #[test]
    fn diag_sup_bounded_by_bfs_depth_in_diag_mode() {
        let g = generators::grid(5, 5);
        let in_root = mask(25, &[12]);
        let mut acc = ElectricalAccumulator::new(&g, &in_root, None, DiagMode::Diagonal, None);
        absorb_batch(&g, &in_root, 0, 200, &SamplerConfig::default(), &mut acc);
        for u in 0..25u32 {
            assert!(
                acc.diag_sup(u) <= acc.bfs_depth(u) as f64 + 1e-12,
                "u={u}: sup {} depth {}",
                acc.diag_sup(u),
                acc.bfs_depth(u)
            );
        }
    }
}
