//! Empirical Bernstein confidence bound (paper Lemma 3.6).
//!
//! For i.i.d. samples `X_i ∈ [0, X_sup]` with empirical variance `X_var`
//! over `n` samples, with probability ≥ 1 − δ,
//!
//! ```text
//! |X̄ − E X̄| ≤ sqrt(2·X_var·ln(3/δ)/n) + 3·X_sup·ln(3/δ)/n
//! ```
//!
//! The adaptive sampling loops compare this half-width against the relative
//! error target (Line 17 of Algorithm 2 / Line 13 of Algorithm 3) and stop
//! early when it is met, while the Hoeffding-style cap `r` preserves the
//! worst-case guarantee.

/// Bernstein half-width `f(n, X_var, X_sup, δ)` from Lemma 3.6.
#[inline]
pub fn bernstein_halfwidth(n: u64, variance: f64, sup: f64, delta: f64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let log_term = (3.0 / delta).ln();
    let nf = n as f64;
    (2.0 * variance.max(0.0) * log_term / nf).sqrt() + 3.0 * sup * log_term / nf
}

/// Relative-error acceptance test of the paper's adaptive loops:
/// `ε'_u ≤ ε (x̂_u − ε'_u)`, i.e. the estimate is an ε-approximation even in
/// the worst case of the confidence interval.
#[inline]
pub fn relative_error_ok(estimate: f64, halfwidth: f64, epsilon: f64) -> bool {
    halfwidth.is_finite() && halfwidth <= epsilon * (estimate - halfwidth)
}

/// The Hoeffding-style worst-case sample bound of Lemma 3.9 (Eq. 8):
/// `r ≥ 2 (ε/15)^{-2} τ² d_max^{2τ+2}(S) log(2n)`, clamped to
/// `[min_cap, max_cap]` — the raw value overflows anything realistic, which
/// is exactly why the paper adds the Bernstein early stop.
pub fn hoeffding_cap(
    n: usize,
    tau: u32,
    dmax_s: usize,
    epsilon: f64,
    min_cap: u64,
    max_cap: u64,
) -> u64 {
    let tau = tau.max(1) as f64;
    let d = dmax_s.max(1) as f64;
    let raw = 2.0
        * (epsilon / 15.0).powi(-2)
        * tau
        * tau
        * d.powf((2.0 * tau + 2.0).min(64.0))
        * (2.0 * n.max(2) as f64).ln();
    if !raw.is_finite() || raw >= max_cap as f64 {
        max_cap
    } else {
        (raw as u64).clamp(min_cap, max_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfwidth_shrinks_with_samples() {
        let a = bernstein_halfwidth(100, 1.0, 5.0, 0.01);
        let b = bernstein_halfwidth(10_000, 1.0, 5.0, 0.01);
        assert!(b < a);
        assert!(b > 0.0);
    }

    #[test]
    fn zero_samples_is_infinite() {
        assert!(bernstein_halfwidth(0, 1.0, 1.0, 0.1).is_infinite());
    }

    #[test]
    fn zero_variance_leaves_range_term() {
        let h = bernstein_halfwidth(1000, 0.0, 2.0, 0.05);
        let expect = 3.0 * 2.0 * (3.0f64 / 0.05).ln() / 1000.0;
        assert!((h - expect).abs() < 1e-12);
    }

    #[test]
    fn relative_test_behaviour() {
        // Tight interval around a positive estimate passes.
        assert!(relative_error_ok(10.0, 0.5, 0.2));
        // Interval as large as the estimate fails.
        assert!(!relative_error_ok(10.0, 9.0, 0.2));
        // Infinite half-width fails.
        assert!(!relative_error_ok(10.0, f64::INFINITY, 0.2));
    }

    #[test]
    fn bernstein_covers_true_mean_empirically() {
        // Uniform[0,1] samples: the bound must cover the true mean 0.5 in
        // the vast majority of repetitions.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let mut covered = 0;
        let reps = 200;
        for _ in 0..reps {
            let mut w = cfcc_util::Welford::new();
            for _ in 0..300 {
                w.push(rng.gen::<f64>());
            }
            let h = bernstein_halfwidth(w.count(), w.variance(), 1.0, 0.05);
            if (w.mean() - 0.5).abs() <= h {
                covered += 1;
            }
        }
        assert!(covered >= reps * 95 / 100, "covered {covered}/{reps}");
    }

    #[test]
    fn hoeffding_cap_clamps() {
        // Realistic parameters explode; the cap must clamp.
        assert_eq!(hoeffding_cap(10_000, 10, 50, 0.2, 64, 1 << 20), 1 << 20);
        // Tiny parameters respect the floor.
        assert_eq!(hoeffding_cap(4, 1, 1, 0.9, 2000, 1 << 20), 2000);
        // In between, the raw bound itself is returned.
        let mid = hoeffding_cap(4, 1, 1, 0.9, 64, 1 << 20);
        assert!((64..(1 << 20)).contains(&mid));
    }
}
