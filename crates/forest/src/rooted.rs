//! Rooted-probability counters for the Schur complement (paper Lemma 4.2).
//!
//! For forests rooted at `S ∪ T`, `F_{ut} = Pr(ρ_u = t)` — the probability
//! that `u`'s tree is rooted at `t ∈ T` — equals `(−L_UU^{-1} L_UT)_{ut}`.
//! The counts `Ñ(ρ_u = t)` are accumulated here as a sparse per-node list:
//! each node concentrates on a handful of nearby roots, so a dense
//! `|U| × |T|` matrix would waste memory at scale.

use cfcc_graph::{Graph, Node};
use std::sync::Arc;

/// Maps root nodes of `T` to compact indices `0..|T|`.
#[derive(Debug, Clone)]
pub struct RootIndex {
    /// node → index+1 (0 = not in `T`).
    map: Vec<u32>,
    nodes: Vec<Node>,
}

impl RootIndex {
    /// Build for the auxiliary root set `t_nodes` over an `n`-node graph.
    pub fn new(n: usize, t_nodes: &[Node]) -> Self {
        let mut map = vec![0u32; n];
        for (i, &t) in t_nodes.iter().enumerate() {
            assert!((t as usize) < n);
            assert_eq!(map[t as usize], 0, "duplicate root {t}");
            map[t as usize] = i as u32 + 1;
        }
        Self {
            map,
            nodes: t_nodes.to_vec(),
        }
    }

    /// Number of tracked roots `|T|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no roots are tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Compact index of node `t` if it is a tracked root.
    #[inline]
    pub fn index_of(&self, t: Node) -> Option<usize> {
        let v = self.map[t as usize];
        (v != 0).then(|| (v - 1) as usize)
    }

    /// Root node at compact index `i`.
    #[inline]
    pub fn node_at(&self, i: usize) -> Node {
        self.nodes[i]
    }

    /// All tracked roots in index order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

/// Sparse per-node counts of `Ñ(ρ_u = t)` for `t ∈ T`.
#[derive(Debug, Clone)]
pub struct RootedCounts {
    index: Arc<RootIndex>,
    /// Per node: (root index, count), linear-searched (few entries).
    counts: Vec<Vec<(u32, u32)>>,
}

impl RootedCounts {
    /// Empty counts over `n` nodes.
    pub fn new(n: usize, index: Arc<RootIndex>) -> Self {
        Self {
            index,
            counts: vec![Vec::new(); n],
        }
    }

    /// The root index in use.
    pub fn index(&self) -> &RootIndex {
        &self.index
    }

    /// Record that `u` was rooted at `root` in one sampled forest.
    /// Roots outside `T` (i.e. in `S`) are ignored.
    #[inline]
    pub fn record(&mut self, u: Node, root: Node) {
        if let Some(ti) = self.index.index_of(root) {
            let list = &mut self.counts[u as usize];
            for e in list.iter_mut() {
                if e.0 == ti as u32 {
                    e.1 += 1;
                    return;
                }
            }
            list.push((ti as u32, 1));
        }
    }

    /// Iterate `(t_index, count)` entries for node `u`.
    pub fn entries(&self, u: Node) -> &[(u32, u32)] {
        &self.counts[u as usize]
    }

    /// Empirical probability row `F̃_{u·}` as `(t_index, probability)` pairs.
    pub fn probabilities(&self, u: Node, num_forests: u64) -> Vec<(usize, f64)> {
        assert!(num_forests > 0);
        self.counts[u as usize]
            .iter()
            .map(|&(ti, c)| (ti as usize, c as f64 / num_forests as f64))
            .collect()
    }

    /// Merge counts from another accumulator (parallel reduction).
    pub fn merge(&mut self, other: RootedCounts) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (u, list) in other.counts.into_iter().enumerate() {
            for (ti, c) in list {
                let mine = &mut self.counts[u];
                let mut found = false;
                for e in mine.iter_mut() {
                    if e.0 == ti {
                        e.1 += c;
                        found = true;
                        break;
                    }
                }
                if !found {
                    mine.push((ti, c));
                }
            }
        }
    }

    /// Record roots for every non-root node of a forest in one pass.
    /// `root_of` must come from [`crate::Forest::root_of`].
    pub fn record_forest(&mut self, g: &Graph, in_root: &[bool], root_of: &[Node]) {
        let n = g.num_nodes();
        debug_assert_eq!(root_of.len(), n);
        for u in 0..n as Node {
            if !in_root[u as usize] {
                self.record(u, root_of[u as usize]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wilson::sample_forest;
    use cfcc_graph::generators;
    use cfcc_linalg::dense::DenseMatrix;
    use cfcc_linalg::laplacian::laplacian_dense;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn root_index_lookup() {
        let idx = RootIndex::new(10, &[3, 7]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.index_of(3), Some(0));
        assert_eq!(idx.index_of(7), Some(1));
        assert_eq!(idx.index_of(0), None);
        assert_eq!(idx.node_at(1), 7);
    }

    #[test]
    fn record_and_merge() {
        let idx = Arc::new(RootIndex::new(5, &[0, 1]));
        let mut a = RootedCounts::new(5, idx.clone());
        a.record(2, 0);
        a.record(2, 0);
        a.record(2, 1);
        a.record(3, 4); // not tracked → ignored
        let mut b = RootedCounts::new(5, idx);
        b.record(2, 1);
        b.record(4, 0);
        a.merge(b);
        let p2 = a.probabilities(2, 4);
        assert_eq!(p2.len(), 2);
        let m: std::collections::HashMap<usize, f64> = p2.into_iter().collect();
        assert!((m[&0] - 0.5).abs() < 1e-12);
        assert!((m[&1] - 0.5).abs() < 1e-12);
        assert!(a.entries(3).is_empty());
        assert_eq!(a.entries(4), &[(0, 1)]);
    }

    /// Lemma 4.2: empirical rooted probabilities converge to
    /// `F = −L_UU^{-1} L_UT`.
    #[test]
    fn rooted_probabilities_match_absorbing_probabilities() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let n = g.num_nodes();
        let s = [0u32];
        let t = vec![1u32, 2u32];
        let mut in_root = vec![false; n];
        for &r in s.iter().chain(t.iter()) {
            in_root[r as usize] = true;
        }
        // Dense F: order U ascending.
        let l = laplacian_dense(&g);
        let u_nodes: Vec<u32> = (0..n as u32).filter(|&u| !in_root[u as usize]).collect();
        let k = u_nodes.len();
        let mut luu = DenseMatrix::zeros(k, k);
        let mut lut = DenseMatrix::zeros(k, t.len());
        for (i, &ui) in u_nodes.iter().enumerate() {
            for (j, &uj) in u_nodes.iter().enumerate() {
                luu.set(i, j, l.get(ui as usize, uj as usize));
            }
            for (j, &tj) in t.iter().enumerate() {
                lut.set(i, j, l.get(ui as usize, tj as usize));
            }
        }
        let luu_inv = luu.cholesky().unwrap().inverse();
        let f_exact = luu_inv.matmul(&lut); // = −F
        let idx = Arc::new(RootIndex::new(n, &t));
        let mut counts = RootedCounts::new(n, idx);
        let trials = 40_000u64;
        for _ in 0..trials {
            let f = sample_forest(&g, &in_root, &mut rng);
            let roots = f.root_of();
            counts.record_forest(&g, &in_root, &roots);
        }
        for (i, &ui) in u_nodes.iter().enumerate() {
            let probs: std::collections::HashMap<usize, f64> =
                counts.probabilities(ui, trials).into_iter().collect();
            for (j, _) in t.iter().enumerate() {
                let expect = -f_exact.get(i, j);
                let got = probs.get(&j).copied().unwrap_or(0.0);
                assert!(
                    (got - expect).abs() < 0.02,
                    "u={ui} t={} got {got} expect {expect}",
                    t[j]
                );
            }
        }
    }
}
