//! The `cfcc-audit` binary: `lint` and `model` subcommands, both exiting
//! nonzero on failure so CI can gate on them.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cfcc_audit::lint;
use cfcc_audit::model::{Config, Explorer};
use cfcc_audit::protocols;

const USAGE: &str = "\
cfcc-audit — workspace soundness toolkit

USAGE:
    cfcc-audit lint [--root <dir>] [--allow <file>]
        Run the workspace invariant linter over crates/*/src/**.
        Defaults: root = nearest ancestor containing Cargo.toml + crates/,
        allow = <root>/crates/audit/lint.allow.

    cfcc-audit model [--preemptions <n>] [--schedules <n>]
        Exhaustively model-check the pool park/dispatch, FactorCache
        thundering-herd, and BatchQueue shutdown/drain protocols, then
        confirm the planted-bug variants fail.
        --schedules N switches to N seeded random schedules per model
        (the CFCC_MODEL_SCHEDULES CI bounding mode).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("model") => run_model(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Nearest ancestor of the current directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let root = flag_value(args, "--root")
        .map(PathBuf::from)
        .unwrap_or_else(find_root);
    let allow = flag_value(args, "--allow")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("crates/audit/lint.allow"));
    let report = lint::run(&root, &allow);
    for v in &report.violations {
        println!("{v}");
    }
    for e in &report.allowlist_errors {
        println!("{e}");
    }
    println!(
        "cfcc-lint: {} files, {} violations, {} allowlisted",
        report.files,
        report.violations.len(),
        report.allowed
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_model(args: &[String]) -> ExitCode {
    let mut cfg = Config::default();
    if let Some(p) = flag_value(args, "--preemptions") {
        match p.parse() {
            Ok(n) => cfg.max_preemptions = Some(n),
            Err(_) => {
                eprintln!("invalid --preemptions value: {p}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--schedules").or_else(|| {
        std::env::var("CFCC_MODEL_SCHEDULES")
            .ok()
            .filter(|v| !v.is_empty())
    }) {
        match n.parse() {
            Ok(n) => cfg.random_schedules = Some((0x5EED, n)),
            Err(_) => {
                eprintln!("invalid schedule count: {n}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;
    let mut check = |name: &str, expect_ok: bool, model: Box<dyn Fn() + Send + Sync>| {
        let report = Explorer::new(cfg.clone()).explore(model);
        let ok = report.ok() == expect_ok;
        println!(
            "model {name:<28} [{}] {report}",
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            failed = true;
        }
    };

    check(
        "pool-dispatch",
        true,
        Box::new(protocols::pool_dispatch(false)),
    );
    check("cache-herd", true, Box::new(protocols::cache_herd(false)));
    check(
        "cache-herd-build-failure",
        true,
        Box::new(protocols::cache_herd(true)),
    );
    check(
        "batch-drain",
        true,
        Box::new(protocols::batch_drain(protocols::BatchBugs::default())),
    );
    // Planted bugs: the checker must find each of these.
    check(
        "pool-lost-wakeup (planted)",
        false,
        Box::new(protocols::pool_dispatch(true)),
    );
    check(
        "batch-stranded-submit (planted)",
        false,
        Box::new(protocols::batch_drain(protocols::BatchBugs {
            unchecked_submit: true,
            ..Default::default()
        })),
    );
    check(
        "batch-unlocked-stop (planted)",
        false,
        Box::new(protocols::batch_drain(protocols::BatchBugs {
            unlocked_stop: true,
            ..Default::default()
        })),
    );

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
