//! `cfcc-lint` — the workspace invariant linter.
//!
//! A source-level (line-oriented, AST-lite) scanner over every `.rs` file
//! in `crates/*/src/**` and the root facade's `src/`, enforcing project
//! invariants that rustc/clippy cannot express:
//!
//! | rule id          | invariant |
//! |------------------|-----------|
//! | `safety-comment` | every `unsafe` block/impl/fn is preceded by a `// SAFETY:` comment (or a `# Safety` doc section for `unsafe fn`) |
//! | `thread-spawn`   | no `std::thread::spawn`/`thread::scope` outside `cfcc-linalg/pool.rs` and the serve accept/batcher seam (`serve/lib.rs`) |
//! | `no-unwrap`      | no `.unwrap()` / `.expect(` in serve request-path and linalg hot-path modules — poisoned-lock recovery goes through `into_inner` |
//! | `no-instant-hot-path` | no `Instant::now()` inside the PCG/kernel hot-path modules (deadlines are checked via stop hooks at batched boundaries) |
//! | `lock-order`     | FactorCache discipline: never touch an entry lock (`.factor(` / `.trace(` / `.centrality(`) while the map lock guard is live |
//!
//! Mechanics the scanner gets right so rules see *code*, not prose:
//! string literals are blanked, `//` and `/* … */` comments are separated
//! from code (block comments tracked across lines), and `#[cfg(test)]`
//! items are skipped entirely by brace tracking.
//!
//! Known-good exceptions live in `crates/audit/lint.allow`, one per line:
//!
//! ```text
//! <rule-id> <path-suffix> <line-substring> -- <justification>
//! ```
//!
//! Every entry must carry a justification and must match at least one
//! violation — stale entries fail the lint run, so the allowlist cannot
//! rot.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding: `file:line` plus the rule and offending source line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub excerpt: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Violations suppressed by an allowlist entry.
    pub allowed: usize,
    /// Allowlist entries that matched nothing (stale) or are malformed.
    pub allowlist_errors: Vec<String>,
    /// Files scanned.
    pub files: usize,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.allowlist_errors.is_empty()
    }
}

/// An allowlist entry parsed from `lint.allow`.
#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    pattern: String,
    line_no: usize,
    used: bool,
}

/// Lint the workspace rooted at `root`. `allow_path` is the allowlist
/// file (missing file = empty allowlist).
pub fn run(root: &Path, allow_path: &Path) -> LintReport {
    let mut report = LintReport::default();
    let mut allow = load_allowlist(allow_path, &mut report.allowlist_errors);
    let mut files = collect_sources(root);
    files.sort();
    for path in files {
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        report.files += 1;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        for v in lint_file(&rel, &source) {
            match allow.iter_mut().find(|e| {
                e.rule == v.rule
                    && v.file.ends_with(&e.path_suffix)
                    && v.excerpt.contains(&e.pattern)
            }) {
                Some(entry) => {
                    entry.used = true;
                    report.allowed += 1;
                }
                None => report.violations.push(v),
            }
        }
    }
    for e in &allow {
        if !e.used {
            report.allowlist_errors.push(format!(
                "{}:{}: stale allowlist entry (matches no violation): {} {} {}",
                allow_path.display(),
                e.line_no,
                e.rule,
                e.path_suffix,
                e.pattern
            ));
        }
    }
    report
}

fn load_allowlist(path: &Path, errors: &mut Vec<String>) -> Vec<AllowEntry> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((spec, justification)) = line.split_once(" -- ") else {
            errors.push(format!(
                "{}:{}: allowlist entry missing ` -- <justification>`: {line}",
                path.display(),
                i + 1
            ));
            continue;
        };
        if justification.trim().len() < 10 {
            errors.push(format!(
                "{}:{}: allowlist justification too short (explain *why* this is sound)",
                path.display(),
                i + 1
            ));
            continue;
        }
        let mut parts = spec.splitn(3, char::is_whitespace);
        let (Some(rule), Some(suffix), Some(pattern)) = (parts.next(), parts.next(), parts.next())
        else {
            errors.push(format!(
                "{}:{}: malformed allowlist entry (want `<rule> <path> <substring> -- <why>`)",
                path.display(),
                i + 1
            ));
            continue;
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path_suffix: suffix.to_string(),
            pattern: pattern.trim().to_string(),
            line_no: i + 1,
            used: false,
        });
    }
    entries
}

/// Collect `.rs` sources: every `crates/*/src/**` tree plus the root
/// facade's `src/`.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            collect_rs(&entry.path().join("src"), &mut out);
            // compat shims are nested one level deeper (crates/compat/*).
            if entry.path().ends_with("compat") {
                if let Ok(subs) = fs::read_dir(entry.path()) {
                    for sub in subs.flatten() {
                        collect_rs(&sub.path().join("src"), &mut out);
                    }
                }
            }
        }
    }
    collect_rs(&root.join("src"), &mut out);
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-line lexical split: code vs. comment, strings blanked.
// ---------------------------------------------------------------------------

/// One source line after lexical classification.
struct Line {
    /// Code with string-literal contents blanked and comments removed.
    code: String,
    /// Comment text on this line (`//…` or the in-`/* */` portion).
    comment: String,
    /// Inside a `#[cfg(test)]` item.
    in_test: bool,
}

fn split_lines(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    // Test-item skipping state.
    let mut pending_test_attr = false;
    let mut depth: i64 = 0;
    let mut skip_above: Option<i64> = None;

    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            if in_block_comment {
                if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    comment.push(bytes[i]);
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    // `//` comment runs to end of line.
                    comment.extend(&bytes[i..]);
                    i = bytes.len();
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    // Blank the string body (keep quotes so code shape holds).
                    code.push('"');
                    i += 1;
                    while i < bytes.len() {
                        if bytes[i] == '\\' {
                            i += 2;
                            continue;
                        }
                        if bytes[i] == '"' {
                            break;
                        }
                        i += 1;
                    }
                    code.push('"');
                    i += 1; // past closing quote (or EOL for multiline strings)
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars; a lifetime has no closing quote.
                    let close = if bytes.get(i + 1) == Some(&'\\') {
                        bytes[i + 2..]
                            .iter()
                            .position(|&c| c == '\'')
                            .map(|p| p + i + 2)
                    } else {
                        match bytes.get(i + 2) {
                            Some('\'') => Some(i + 2),
                            _ => None,
                        }
                    };
                    match close {
                        Some(end) => {
                            code.push_str("' '");
                            i = end + 1;
                        }
                        None => {
                            code.push('\'');
                            i += 1;
                        }
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }

        // --- test-item skipping (uses the comment-free code) ---
        let depth_before = depth;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_test_attr && skip_above.is_none() {
                        skip_above = Some(depth_before);
                        pending_test_attr = false;
                    }
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        let mut in_test = skip_above.is_some();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_test_attr = true;
            in_test = true;
        } else if pending_test_attr && skip_above.is_none() && code.trim_end().ends_with(';') {
            // `#[cfg(test)] use …;` — attribute consumed by a braceless item.
            pending_test_attr = false;
            in_test = true;
        }
        if pending_test_attr {
            in_test = true;
        }
        if let Some(limit) = skip_above {
            if depth <= limit {
                skip_above = None;
            }
        }

        out.push(Line {
            code,
            comment,
            in_test,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

/// Serve modules on the request path (a panic here kills a handler).
const SERVE_REQUEST_PATH: &[&str] = &[
    "crates/serve/src/batch.rs",
    "crates/serve/src/cache.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/registry.rs",
    "crates/serve/src/lib.rs",
];

/// Linalg hot-path modules (inner solver loops; also no timing syscalls).
const LINALG_HOT_PATH: &[&str] = &[
    "crates/linalg/src/pool.rs",
    "crates/linalg/src/kernel.rs",
    "crates/linalg/src/cg.rs",
    "crates/linalg/src/csr.rs",
    "crates/linalg/src/laplacian.rs",
    "crates/linalg/src/lsst.rs",
];

/// Files allowed to spawn OS threads: the worker pool and the serve
/// accept/batcher seam. The audit crate itself is excluded wholesale —
/// its model-checker controller *is* a thread scheduler.
const SPAWN_EXEMPT: &[&str] = &["crates/linalg/src/pool.rs", "crates/serve/src/lib.rs"];

fn in_list(file: &str, list: &[&str]) -> bool {
    list.iter().any(|f| file.ends_with(f) || file == *f)
}

fn word_at(code: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = after;
    }
    None
}

/// Lint one file; `file` is the repo-relative path used in rule scoping.
pub fn lint_file(file: &str, source: &str) -> Vec<Violation> {
    let lines = split_lines(source);
    let mut out = Vec::new();
    let audit_crate = file.starts_with("crates/audit/");

    // lock-order tracking: a live FactorCache-style map guard.
    let mut map_guard: Option<(String, i64)> = None;
    let mut depth: i64 = 0;

    let raw_lines: Vec<&str> = source.lines().collect();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        let excerpt = raw_lines.get(idx).map_or("", |s| s.trim()).to_string();
        let depth_before = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if line.in_test {
            continue;
        }

        // --- safety-comment -------------------------------------------------
        if !audit_crate {
            if let Some(pos) = word_at(code, "unsafe") {
                let tail = code[pos..].trim_start_matches("unsafe").trim_start();
                let is_site = tail.starts_with('{')
                    || tail.starts_with("impl")
                    || tail.starts_with("fn")
                    || tail.starts_with("extern")
                    || tail.is_empty();
                if is_site && !has_safety_comment(&lines, idx) {
                    out.push(Violation {
                        rule: "safety-comment",
                        file: file.to_string(),
                        line: lineno,
                        excerpt: excerpt.clone(),
                        message: "`unsafe` site without a preceding `// SAFETY:` comment".into(),
                    });
                }
            }
        }

        // --- thread-spawn ---------------------------------------------------
        if !audit_crate
            && !in_list(file, SPAWN_EXEMPT)
            && (code.contains("thread::spawn") || code.contains("thread::scope"))
        {
            out.push(Violation {
                rule: "thread-spawn",
                file: file.to_string(),
                line: lineno,
                excerpt: excerpt.clone(),
                message:
                    "OS threads may only be created in linalg/pool.rs or the serve accept seam"
                        .into(),
            });
        }

        // --- no-unwrap ------------------------------------------------------
        if (in_list(file, SERVE_REQUEST_PATH) || in_list(file, LINALG_HOT_PATH))
            && (code.contains(".unwrap()") || code.contains(".expect("))
        {
            out.push(Violation {
                rule: "no-unwrap",
                file: file.to_string(),
                line: lineno,
                excerpt: excerpt.clone(),
                message: "request/hot path must not panic; recover poisoned locks via into_inner"
                    .into(),
            });
        }

        // --- no-instant-hot-path -------------------------------------------
        if in_list(file, LINALG_HOT_PATH) && code.contains("Instant::now") {
            out.push(Violation {
                rule: "no-instant-hot-path",
                file: file.to_string(),
                line: lineno,
                excerpt: excerpt.clone(),
                message:
                    "no timing syscalls in solver inner loops; use stop hooks at batch boundaries"
                        .into(),
            });
        }

        // --- lock-order -----------------------------------------------------
        if file.starts_with("crates/serve/") {
            if let Some((guard, g_depth)) = &map_guard {
                let released = depth_before < *g_depth
                    || code.contains(&format!("drop({guard})"))
                    || code.contains(&format!("drop(mut {guard})"));
                if released {
                    map_guard = None;
                } else {
                    const ENTRY_LOCK: &[&str] = &[
                        ".factor(",
                        ".factor_mut(",
                        ".trace(",
                        ".centrality(",
                        ".factor.lock(",
                        ".trace.lock(",
                        ".centrality.lock(",
                    ];
                    if ENTRY_LOCK.iter().any(|p| code.contains(p)) {
                        out.push(Violation {
                            rule: "lock-order",
                            file: file.to_string(),
                            line: lineno,
                            excerpt: excerpt.clone(),
                            message: format!(
                                "entry lock touched while map guard `{guard}` is live \
                                 (FactorCache discipline: map lock, clone Arc, drop, then entry lock)"
                            ),
                        });
                    }
                }
            }
            if map_guard.is_none() && code.contains(".lock(") && code.contains("self.inner") {
                if let Some(name) = guard_binding(code) {
                    map_guard = Some((name, depth_before));
                }
            }
        }
    }
    out
}

/// Extract `name` from `let [mut] name = …`.
fn guard_binding(code: &str) -> Option<String> {
    let pos = word_at(code, "let")?;
    let rest = code[pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Look upward from `idx` through contiguous comment/attribute lines (and
/// the same line's trailing comment) for `SAFETY:` or a `# Safety` doc
/// section.
fn has_safety_comment(lines: &[Line], idx: usize) -> bool {
    let hit = |c: &str| c.contains("SAFETY:") || c.contains("# Safety");
    if hit(&lines[idx].comment) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code_trim = l.code.trim();
        let is_attr = code_trim.starts_with("#[") || code_trim.starts_with("#!");
        let is_comment_only = code_trim.is_empty() && !l.comment.is_empty();
        if !(is_attr || is_comment_only) {
            return false;
        }
        if hit(&l.comment) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_comment_detected_and_missing() {
        let good = "// SAFETY: disjoint rows\nunsafe { go() }\n";
        assert!(lint_file("crates/linalg/src/pool.rs", good).is_empty());
        let bad = "let x = 1;\nunsafe { go() }\n";
        let v = lint_file("crates/linalg/src/pool.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let s = "let m = \"unsafe {\";\n// unsafe impl note\n";
        assert!(lint_file("crates/linalg/src/pool.rs", s).is_empty());
    }

    #[test]
    fn doc_safety_section_counts_for_unsafe_fn() {
        let s = "/// Reads raw.\n///\n/// # Safety\n/// Caller upholds aliasing.\npub unsafe fn f() {}\n";
        assert!(lint_file("crates/linalg/src/pool.rs", s).is_empty());
    }

    #[test]
    fn spawn_flagged_outside_exempt_files() {
        let s = "std::thread::spawn(|| {});\n";
        let v = lint_file("crates/forest/src/sampler.rs", s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "thread-spawn");
        assert!(lint_file("crates/linalg/src/pool.rs", s).is_empty());
        assert!(lint_file("crates/serve/src/lib.rs", s).is_empty());
    }

    #[test]
    fn cfg_test_items_skipped() {
        let s = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); std::thread::spawn(|| {}); }\n}\nfn also_live() { y.unwrap(); }\n";
        let v = lint_file("crates/serve/src/batch.rs", s);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
        assert_eq!(v[0].rule, "no-unwrap");
    }

    #[test]
    fn unwrap_scoped_to_listed_modules() {
        let s = "x.unwrap();\n";
        assert_eq!(lint_file("crates/serve/src/metrics.rs", s).len(), 1);
        assert!(lint_file("crates/serve/src/protocol.rs", s).is_empty());
        assert!(lint_file("crates/graph/src/lib.rs", s).is_empty());
    }

    #[test]
    fn lock_order_violation_detected() {
        let s = "fn f(&self) {\n    let mut map = self.inner.lock().unwrap_or_else(p);\n    entry.factor(|| x);\n}\n";
        let v = lint_file("crates/serve/src/cache.rs", s);
        assert!(v.iter().any(|v| v.rule == "lock-order"), "{v:?}");
        // Dropping the guard first is the documented discipline.
        let ok = "fn f(&self) {\n    let mut map = self.inner.lock().unwrap_or_else(p);\n    drop(map);\n    entry.factor(|| x);\n}\n";
        assert!(lint_file("crates/serve/src/cache.rs", ok)
            .iter()
            .all(|v| v.rule != "lock-order"));
    }

    #[test]
    fn lock_order_scope_ends_with_block() {
        let s = "fn f(&self) {\n    {\n        let map = self.inner.lock().x();\n    }\n    entry.factor(|| x);\n}\n";
        assert!(lint_file("crates/serve/src/cache.rs", s)
            .iter()
            .all(|v| v.rule != "lock-order"));
    }

    #[test]
    fn instant_flagged_in_hot_path() {
        let s = "let t = Instant::now();\n";
        assert_eq!(lint_file("crates/linalg/src/cg.rs", s).len(), 1);
        assert!(lint_file("crates/serve/src/lib.rs", s).is_empty());
    }

    #[test]
    fn char_literal_and_lifetime_survive_lexing() {
        let s = "fn f<'a>(x: &'a str) -> char { let q = '\"'; let b = '{'; q }\n";
        assert!(lint_file("crates/serve/src/batch.rs", s).is_empty());
    }
}
