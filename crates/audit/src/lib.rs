//! `cfcc-audit` — the in-repo soundness toolkit.
//!
//! The build environment is offline, so — following the `crates/compat`
//! rand/criterion precedent — the workspace's static analysis lives
//! in-repo instead of pulling external tools:
//!
//! * [`lint`] — `cfcc-lint`, a source-level workspace invariant linter
//!   (SAFETY comments, thread-spawn confinement, panic-free request/hot
//!   paths, `Instant`-free solver loops, FactorCache lock order), run in
//!   CI via `cargo run -p cfcc-audit -- lint`.
//! * [`model`] — `cfcc-model`, a deterministic interleaving explorer
//!   (mini-loom: DFS over schedule decision points, bounded preemptions,
//!   state-hash pruning) with shim `Mutex`/`Condvar`/atomic types.
//! * [`protocols`] — small models of the three highest-risk concurrency
//!   protocols (pool park/dispatch, FactorCache thundering herd,
//!   BatchQueue shutdown/drain), exhaustively checked by the test suite
//!   in `crates/audit/tests/` and by `cargo run -p cfcc-audit -- model`.
//!
//! `#![forbid(unsafe_code)]`: the toolkit that audits unsafe must not
//! add any.

#![forbid(unsafe_code)]

pub mod lint;
pub mod model;
pub mod protocols;
