//! `cfcc-model` — a deterministic interleaving explorer (a mini-loom).
//!
//! # What this is
//!
//! The concurrency protocols in this workspace (`cfcc_linalg::pool`
//! park/dispatch, `cfcc_serve` factor-cache thundering herd, batch-queue
//! shutdown/drain) are exercised by stress tests, which sample a handful
//! of interleavings per run. This module checks *small models* of those
//! protocols against **every** interleaving (up to a preemption bound):
//! model code uses the shim types in [`sync`] and [`thread`] instead of
//! `std::sync`/`std::thread`, and [`Explorer::explore`] re-runs the model
//! under depth-first enumeration of scheduler choices.
//!
//! # How it works
//!
//! Model threads are real OS threads, but only **one runs at a time**:
//! every shim operation (mutex lock/unlock, condvar wait/notify, atomic
//! access, join) is a *decision point* where the running thread parks and
//! a controller picks which runnable thread proceeds next. A schedule is
//! the sequence of picks; the explorer enumerates schedules in DFS order,
//! replaying the shared prefix each run. Three well-known tricks bound
//! the space:
//!
//! * **Bounded preemptions** ([`Config::max_preemptions`]): switching
//!   away from a thread that could still run costs one preemption;
//!   schedules over budget are not explored. Most real concurrency bugs
//!   need very few preemptions (CHESS's observation), so a bound of 2–3
//!   retains practically all bug-finding power at polynomial cost.
//! * **State-hash pruning** ([`Config::state_pruning`]): at a fresh
//!   decision point the controller hashes the visible state (every shim
//!   object's state + every thread's status and pending operation). If
//!   that state was already reached with at least as much remaining
//!   preemption budget, the subtree is not branched again.
//! * **Seeded random schedules** ([`Config::random_schedules`], or the
//!   `CFCC_MODEL_SCHEDULES=N` environment variable in the test suite):
//!   instead of DFS, run `N` randomly scheduled executions — a cheap
//!   CI-time bound for models whose exhaustive space is too large.
//!
//! Failures the explorer reports, with a full decision trace:
//!
//! * **panics** in model code (`assert!` violations — the model's own
//!   invariants);
//! * **deadlock**: no thread can run but some are unfinished (this is
//!   also how a *lost wakeup* manifests: the sleeper waits forever);
//! * **livelock/step-limit**: an execution exceeding
//!   [`Config::max_steps`] decisions.
//!
//! # Model semantics (deliberate simplifications)
//!
//! * Atomics are **sequentially consistent** regardless of the
//!   `Ordering` argument (which is accepted and ignored, so model code
//!   can mirror production code verbatim). Bugs that require observing
//!   relaxed-memory reorderings are out of scope.
//! * Condvars do **not** wake spuriously, and `notify_one` wakes waiters
//!   in FIFO order. (Production code must still use `while`-loop waits;
//!   models that rely on no-spurious-wakeup are checking a *stronger*
//!   claim than std promises, which is the safe direction for absence
//!   checks on the protocols themselves.)
//! * There is no time: `sleep`/timeout-based code must be modeled by a
//!   plain decision point ([`thread::yield_now`]).

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Explorer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum context switches away from a still-runnable thread per
    /// execution (`None` = unbounded — truly exhaustive, exponential).
    pub max_preemptions: Option<usize>,
    /// Hard cap on explored executions; hitting it clears
    /// [`Report::exhausted`] so callers can tell "space covered" from
    /// "budget exhausted".
    pub max_schedules: usize,
    /// Decisions per execution before declaring a livelock.
    pub max_steps: usize,
    /// Prune subtrees whose visible state was already explored with at
    /// least the current preemption budget.
    pub state_pruning: bool,
    /// `Some((seed, n))`: run `n` seeded random schedules instead of DFS
    /// (the CI-time bounding mode).
    pub random_schedules: Option<(u64, usize)>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_preemptions: Some(3),
            max_schedules: 250_000,
            max_steps: 10_000,
            state_pruning: true,
            random_schedules: None,
        }
    }
}

/// Why an execution failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// A model thread panicked (failed `assert!` = violated invariant).
    Panic { thread: usize, message: String },
    /// Unfinished threads exist but none can be scheduled. Lost wakeups
    /// land here: the sleeper's pending wait is reported.
    Deadlock { waiting: Vec<String> },
    /// One execution exceeded [`Config::max_steps`] decisions.
    StepLimit,
}

/// A failing schedule: what went wrong plus the decision trace that
/// reproduces it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// One line per scheduler decision: `T<tid> <op> @ <file:line>`.
    pub trace: Vec<String>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Panic { thread, message } => {
                writeln!(f, "model thread T{thread} panicked: {message}")?
            }
            FailureKind::Deadlock { waiting } => {
                writeln!(f, "deadlock — unfinished threads, none schedulable:")?;
                for w in waiting {
                    writeln!(f, "    {w}")?;
                }
            }
            FailureKind::StepLimit => writeln!(f, "step limit exceeded (livelock?)")?,
        }
        writeln!(f, "  schedule trace ({} decisions):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// The outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Executions run.
    pub schedules: usize,
    /// Whether the bounded schedule space was fully enumerated (always
    /// `false` in random mode).
    pub exhausted: bool,
    /// First failing schedule, if any (exploration stops on it).
    pub failure: Option<Failure>,
    /// Decision points where state-hash pruning cut the subtree.
    pub pruned: usize,
    /// Longest execution, in decisions.
    pub max_depth: usize,
}

impl Report {
    /// No failing schedule found.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            None => write!(
                f,
                "ok: {} schedules ({}), {} pruned, max depth {}",
                self.schedules,
                if self.exhausted {
                    "exhausted"
                } else {
                    "budget-capped"
                },
                self.pruned,
                self.max_depth
            ),
            Some(fail) => write!(f, "FAILED after {} schedules\n{fail}", self.schedules),
        }
    }
}

// ---------------------------------------------------------------------------
// World: the per-execution shared state the controller schedules over.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    /// First decision point of a freshly spawned thread (always enabled).
    Start,
    Lock(usize),
    Unlock(usize, u64),
    /// Atomic release-and-wait; the release half is applied at submission.
    CvWait {
        cv: usize,
        mutex: usize,
    },
    NotifyOne(usize),
    NotifyAll(usize),
    Load(usize),
    Store(usize, u64),
    FetchAdd(usize, u64),
    Swap(usize, u64),
    CompareExchange {
        id: usize,
        current: u64,
        new: u64,
    },
    Join(usize),
    Yield,
}

impl Op {
    fn describe(&self) -> String {
        match self {
            Op::Start => "start".into(),
            Op::Lock(m) => format!("lock(mutex#{m})"),
            Op::Unlock(m, _) => format!("unlock(mutex#{m})"),
            Op::CvWait { cv, mutex } => format!("wait(cv#{cv}, mutex#{mutex})"),
            Op::NotifyOne(c) => format!("notify_one(cv#{c})"),
            Op::NotifyAll(c) => format!("notify_all(cv#{c})"),
            Op::Load(a) => format!("load(atomic#{a})"),
            Op::Store(a, v) => format!("store(atomic#{a}, {v})"),
            Op::FetchAdd(a, v) => format!("fetch_add(atomic#{a}, {v})"),
            Op::Swap(a, v) => format!("swap(atomic#{a}, {v})"),
            Op::CompareExchange { id, current, new } => {
                format!("compare_exchange(atomic#{id}, {current}->{new})")
            }
            Op::Join(t) => format!("join(T{t})"),
            Op::Yield => "yield".into(),
        }
    }

    /// Discriminant + operands for the state signature.
    fn sig(&self, h: &mut DefaultHasher) {
        std::mem::discriminant(self).hash(h);
        match self {
            Op::Start | Op::Yield => {}
            Op::Lock(x) | Op::NotifyOne(x) | Op::NotifyAll(x) | Op::Load(x) | Op::Join(x) => {
                x.hash(h)
            }
            Op::Unlock(x, v) | Op::Store(x, v) | Op::FetchAdd(x, v) | Op::Swap(x, v) => {
                (x, v).hash(h)
            }
            Op::CvWait { cv, mutex } => (cv, mutex).hash(h),
            Op::CompareExchange { id, current, new } => (id, current, new).hash(h),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Status {
    /// Registered; its OS thread has not reached the first decision point.
    Settling,
    /// Parked at a decision point with a pending op.
    Parked,
    /// The one thread currently executing model code.
    Running,
    /// Parked inside `Condvar::wait`; not schedulable until notified.
    CvWaiting(usize),
    Finished,
}

#[derive(Debug, Clone)]
enum ObjState {
    Mutex { locked: bool, data_hash: u64 },
    Cv { waiters: Vec<(usize, usize)> },
    Atomic { value: u64 },
}

struct ThreadInfo {
    status: Status,
    pending: Option<(Op, &'static Location<'static>)>,
    /// Result slot for atomic ops: (value, cas-success).
    result: (u64, bool),
}

struct Inner {
    threads: Vec<ThreadInfo>,
    objects: Vec<ObjState>,
    active: Option<usize>,
    /// Threads registered whose OS thread has not parked yet.
    settling: usize,
    aborting: bool,
    failure: Option<FailureKind>,
    trace: Vec<String>,
}

struct World {
    inner: StdMutex<Inner>,
    turn: StdCondvar,
}

impl World {
    fn new() -> Arc<Self> {
        Arc::new(World {
            inner: StdMutex::new(Inner {
                threads: Vec::new(),
                objects: Vec::new(),
                active: None,
                settling: 0,
                aborting: false,
                failure: None,
                trace: Vec::new(),
            }),
            turn: StdCondvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Model-thread panics unwind through shim guards; recover instead
        // of cascading poison panics into the controller.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register_object(&self, state: ObjState) -> usize {
        let mut inner = self.lock();
        inner.objects.push(state);
        inner.objects.len() - 1
    }

    /// Submit an operation at a decision point and park until scheduled.
    /// Returns the op's result slot (meaningful for atomic ops).
    fn op(self: &Arc<Self>, tid: usize, op: Op, loc: &'static Location<'static>) -> (u64, bool) {
        if std::thread::panicking() {
            // Unwinding (assert failure or abort signal): shim guards still
            // drop and must release their locks without re-parking — the
            // controller is about to tear this execution down.
            let mut inner = self.lock();
            if let Op::Unlock(m, h) = op {
                if let ObjState::Mutex { locked, data_hash } = &mut inner.objects[m] {
                    *locked = false;
                    *data_hash = h;
                }
            }
            return (0, false);
        }
        let mut inner = self.lock();
        if inner.aborting {
            drop(inner);
            std::panic::panic_any(ModelAbort);
        }
        if inner.threads[tid].status == Status::Settling {
            inner.settling -= 1;
        }
        // Every op — including CvWait — parks here with its effects
        // still unapplied; the controller applies them at activation.
        // For CvWait that is load-bearing: between submission and
        // activation the thread still holds the mutex and is NOT yet on
        // the condvar's waiter list, which is exactly the real-world
        // window in which a concurrent notify is lost. Applying the
        // release+register at submission instead would weld it atomically
        // to the thread's preceding step and make lost-wakeup schedules
        // unrepresentable.
        inner.threads[tid].status = Status::Parked;
        inner.threads[tid].pending = Some((op, loc));
        if inner.active == Some(tid) {
            inner.active = None;
        }
        self.turn.notify_all();
        loop {
            if inner.aborting && inner.active == Some(tid) {
                inner.active = None;
                inner.threads[tid].status = Status::Running;
                drop(inner);
                std::panic::panic_any(ModelAbort);
            }
            if inner.active == Some(tid) && inner.threads[tid].status == Status::Running {
                let result = inner.threads[tid].result;
                return result;
            }
            inner = self
                .turn
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish_thread(&self, tid: usize) {
        let mut inner = self.lock();
        inner.threads[tid].status = Status::Finished;
        inner.threads[tid].pending = None;
        if inner.active == Some(tid) {
            inner.active = None;
        }
        self.turn.notify_all();
    }
}

/// Private payload used to unwind model threads during teardown.
struct ModelAbort;

// ---------------------------------------------------------------------------
// Thread-local context: which world + model thread this OS thread belongs to.
// ---------------------------------------------------------------------------

struct Ctx {
    world: Arc<World>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn with_ctx<R>(f: impl FnOnce(&Arc<World>, usize) -> R) -> R {
    CTX.with(|c| {
        let ctx = c.borrow();
        let ctx = ctx
            .as_ref()
            .expect("cfcc-model primitives may only be used inside Explorer::explore");
        f(&ctx.world, ctx.tid)
    })
}

fn submit(op: Op, loc: &'static Location<'static>) -> (u64, bool) {
    with_ctx(|world, tid| world.op(tid, op, loc))
}

// ---------------------------------------------------------------------------
// Shim primitives.
// ---------------------------------------------------------------------------

/// Shim synchronization types; drop-in shapes for `std::sync` equivalents.
pub mod sync {
    use super::*;

    /// Model mutex. Data must be `Hash` so the explorer can fold it into
    /// the state signature used for pruning.
    pub struct Mutex<T: Hash> {
        id: usize,
        world: Arc<World>,
        data: StdMutex<T>,
    }

    impl<T: Hash> Mutex<T> {
        pub fn new(value: T) -> Self {
            let world = with_ctx(|world, _| Arc::clone(world));
            let mut h = DefaultHasher::new();
            value.hash(&mut h);
            let id = world.register_object(ObjState::Mutex {
                locked: false,
                data_hash: h.finish(),
            });
            Self {
                id,
                world,
                data: StdMutex::new(value),
            }
        }

        /// Lock; a decision point that blocks while another model thread
        /// holds the lock.
        #[track_caller]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            submit(Op::Lock(self.id), Location::caller());
            let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
            MutexGuard {
                mutex: self,
                inner: Some(inner),
            }
        }
    }

    /// Guard for [`Mutex`]; releases (a decision point) on drop.
    pub struct MutexGuard<'a, T: Hash> {
        mutex: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T: Hash> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard holds the lock")
        }
    }

    impl<T: Hash> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard holds the lock")
        }
    }

    impl<T: Hash> Drop for MutexGuard<'_, T> {
        #[track_caller]
        fn drop(&mut self) {
            let mut h = DefaultHasher::new();
            if let Some(inner) = &self.inner {
                (**inner).hash(&mut h);
            }
            let hash = h.finish();
            // Drop the std guard before announcing the release: once the
            // model-level unlock is visible the controller may schedule
            // another locker, which takes the std lock for real.
            self.inner = None;
            submit(Op::Unlock(self.mutex.id, hash), Location::caller());
        }
    }

    /// Model condvar: no spurious wakeups, FIFO `notify_one`.
    pub struct Condvar {
        id: usize,
        world: Arc<World>,
    }

    impl Condvar {
        pub fn new() -> Self {
            let world = with_ctx(|world, _| Arc::clone(world));
            let id = world.register_object(ObjState::Cv {
                waiters: Vec::new(),
            });
            Self { id, world }
        }

        /// Atomically release the guard and wait to be notified, then
        /// reacquire. (Reacquisition is its own decision point, exactly
        /// like the real race the protocols must survive.)
        #[track_caller]
        pub fn wait<'a, T: Hash>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let mutex: &'a Mutex<T> = guard.mutex;
            debug_assert!(
                Arc::ptr_eq(&self.world, &mutex.world),
                "condvar and mutex belong to different explorations"
            );
            // Release the std lock by hand (not via Drop, which would
            // submit a separate Unlock op — wait's release half must be
            // atomic with parking).
            guard.inner = None;
            let loc = Location::caller();
            submit(
                Op::CvWait {
                    cv: self.id,
                    mutex: mutex.id,
                },
                loc,
            );
            std::mem::forget(guard);
            let inner = mutex.data.lock().unwrap_or_else(PoisonError::into_inner);
            MutexGuard {
                mutex,
                inner: Some(inner),
            }
        }

        /// Wake the longest-waiting thread, if any.
        #[track_caller]
        pub fn notify_one(&self) {
            submit(Op::NotifyOne(self.id), Location::caller());
        }

        /// Wake every waiting thread.
        #[track_caller]
        pub fn notify_all(&self) {
            submit(Op::NotifyAll(self.id), Location::caller());
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    macro_rules! model_atomic {
        ($name:ident, $ty:ty, $to:expr, $from:expr) => {
            /// Sequentially consistent model atomic; the `Ordering`
            /// argument is accepted (so model code mirrors production
            /// code) and ignored.
            pub struct $name {
                id: usize,
            }

            impl $name {
                #[allow(clippy::redundant_closure_call)]
                pub fn new(value: $ty) -> Self {
                    let world = with_ctx(|world, _| Arc::clone(world));
                    let id = world.register_object(ObjState::Atomic {
                        value: ($to)(value),
                    });
                    Self { id }
                }

                #[track_caller]
                #[allow(clippy::redundant_closure_call)]
                pub fn load(&self, _order: Ordering) -> $ty {
                    ($from)(submit(Op::Load(self.id), Location::caller()).0)
                }

                #[track_caller]
                #[allow(clippy::redundant_closure_call)]
                pub fn store(&self, value: $ty, _order: Ordering) {
                    submit(Op::Store(self.id, ($to)(value)), Location::caller());
                }

                #[track_caller]
                #[allow(clippy::redundant_closure_call)]
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    ($from)(submit(Op::Swap(self.id, ($to)(value)), Location::caller()).0)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);
    model_atomic!(AtomicBool, bool, |v: bool| v as u64, |v: u64| v != 0);

    impl AtomicUsize {
        /// Atomic add; returns the previous value.
        #[track_caller]
        pub fn fetch_add(&self, value: usize, _order: Ordering) -> usize {
            submit(Op::FetchAdd(self.id, value as u64), Location::caller()).0 as usize
        }

        /// Sequentially consistent compare-exchange.
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<usize, usize> {
            let (prev, ok) = submit(
                Op::CompareExchange {
                    id: self.id,
                    current: current as u64,
                    new: new as u64,
                },
                Location::caller(),
            );
            if ok {
                Ok(prev as usize)
            } else {
                Err(prev as usize)
            }
        }
    }
}

/// Shim threads: `spawn` registers a model thread with the controller.
pub mod thread {
    use super::*;

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Wait (a blocking decision point) for the thread to finish and
        /// return its result.
        #[track_caller]
        pub fn join(mut self) -> T {
            submit(Op::Join(self.tid), Location::caller());
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            self.result
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("joined model thread left no result (it panicked)")
        }
    }

    /// Spawn a model thread. Must be called from inside a model.
    pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
        let world = with_ctx(|world, _| Arc::clone(world));
        let result = Arc::new(StdMutex::new(None));
        let tid = {
            let mut inner = world.lock();
            inner.threads.push(ThreadInfo {
                status: Status::Settling,
                pending: None,
                result: (0, false),
            });
            inner.settling += 1;
            inner.threads.len() - 1
        };
        let os = spawn_model_thread(Arc::clone(&world), tid, f, Arc::clone(&result));
        JoinHandle {
            tid,
            result,
            os: Some(os),
        }
    }

    /// An explicit decision point (models `sleep`, timed waits, or any
    /// "the scheduler may run someone else here" seam).
    #[track_caller]
    pub fn yield_now() {
        submit(Op::Yield, Location::caller());
    }
}

/// Silence the default panic printout for model threads: a panicking
/// model thread is a *finding*, reported through [`Failure`] with its
/// schedule trace — the raw backtrace (fired once per failing schedule,
/// and for every teardown unwind) is pure noise. Installed once, chained
/// to whatever hook was already set so non-model panics print as usual.
fn silence_model_thread_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("cfcc-model-"));
            if !in_model_thread {
                previous(info);
            }
        }));
    });
}

fn spawn_model_thread<T: Send + 'static>(
    world: Arc<World>,
    tid: usize,
    f: impl FnOnce() -> T + Send + 'static,
    result: Arc<StdMutex<Option<T>>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("cfcc-model-{tid}"))
        .spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    world: Arc::clone(&world),
                    tid,
                });
            });
            // Park at the first decision point so the spawner's schedule
            // stays deterministic regardless of OS thread startup timing.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                submit(Op::Start, Location::caller());
                f()
            }));
            match outcome {
                Ok(value) => {
                    *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                }
                Err(payload) => {
                    if !payload.is::<ModelAbort>() {
                        let message = panic_message(payload.as_ref());
                        let mut inner = world.lock();
                        if inner.failure.is_none() {
                            inner.failure = Some(FailureKind::Panic {
                                thread: tid,
                                message,
                            });
                        }
                        inner.aborting = true;
                    }
                }
            }
            world.finish_thread(tid);
            CTX.with(|c| *c.borrow_mut() = None);
        })
        .expect("spawn model thread")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}

// ---------------------------------------------------------------------------
// The explorer.
// ---------------------------------------------------------------------------

/// One DFS stack frame: the branch taken at a decision point and how many
/// branches exist there.
#[derive(Debug, Clone, Copy)]
struct Frame {
    choice: usize,
    arity: usize,
}

enum RunOutcome {
    Completed { depth: usize },
    Failed(Failure),
}

/// The schedule enumerator. See the module docs for the method.
pub struct Explorer {
    cfg: Config,
}

impl Explorer {
    pub fn new(cfg: Config) -> Self {
        Self { cfg }
    }

    /// Explore `model` under every schedule (bounded per the config).
    /// The closure runs once per schedule as model thread `T0`; it
    /// builds its shared state, spawns model threads, joins them, and
    /// asserts final-state invariants.
    pub fn explore(&self, model: impl Fn() + Send + Sync + 'static) -> Report {
        silence_model_thread_panics();
        let model = Arc::new(model);
        if let Some((seed, n)) = self.cfg.random_schedules {
            return self.explore_random(&model, seed, n);
        }
        let mut stack: Vec<Frame> = Vec::new();
        let mut visited: HashMap<u64, usize> = HashMap::new();
        let mut pruned = 0usize;
        let mut schedules = 0usize;
        let mut max_depth = 0usize;
        loop {
            if schedules >= self.cfg.max_schedules {
                return Report {
                    schedules,
                    exhausted: false,
                    failure: None,
                    pruned,
                    max_depth,
                };
            }
            schedules += 1;
            let outcome = run_one(
                &self.cfg,
                Arc::clone(&model),
                &mut stack,
                &mut visited,
                &mut pruned,
                None,
            );
            match outcome {
                RunOutcome::Failed(failure) => {
                    return Report {
                        schedules,
                        exhausted: false,
                        failure: Some(failure),
                        pruned,
                        max_depth,
                    };
                }
                RunOutcome::Completed { depth } => {
                    max_depth = max_depth.max(depth);
                    // DFS increment: bump the deepest frame with an
                    // unexplored branch; drop everything below it.
                    while let Some(top) = stack.last() {
                        if top.choice + 1 < top.arity {
                            break;
                        }
                        stack.pop();
                    }
                    match stack.last_mut() {
                        Some(top) => top.choice += 1,
                        None => {
                            return Report {
                                schedules,
                                exhausted: true,
                                failure: None,
                                pruned,
                                max_depth,
                            };
                        }
                    }
                }
            }
        }
    }

    fn explore_random(
        &self,
        model: &Arc<impl Fn() + Send + Sync + 'static>,
        seed: u64,
        n: usize,
    ) -> Report {
        let mut rng = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut max_depth = 0usize;
        for i in 0..n {
            let mut stack = Vec::new();
            let mut visited = HashMap::new();
            let mut pruned = 0;
            // SplitMix64 step per execution; `run_one` draws from it.
            rng = splitmix(rng.wrapping_add(i as u64));
            let outcome = run_one(
                &self.cfg,
                Arc::clone(model),
                &mut stack,
                &mut visited,
                &mut pruned,
                Some(rng),
            );
            match outcome {
                RunOutcome::Failed(failure) => {
                    return Report {
                        schedules: i + 1,
                        exhausted: false,
                        failure: Some(failure),
                        pruned: 0,
                        max_depth,
                    };
                }
                RunOutcome::Completed { depth } => max_depth = max_depth.max(depth),
            }
        }
        Report {
            schedules: n,
            exhausted: false,
            failure: None,
            pruned: 0,
            max_depth,
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Run one execution, replaying the choices already on `stack` and
/// extending it at the frontier (DFS mode) or choosing pseudo-randomly
/// (random mode, `random_seed = Some`).
fn run_one(
    cfg: &Config,
    model: Arc<impl Fn() + Send + Sync + 'static>,
    stack: &mut Vec<Frame>,
    visited: &mut HashMap<u64, usize>,
    pruned: &mut usize,
    random_seed: Option<u64>,
) -> RunOutcome {
    let world = World::new();
    let result = Arc::new(StdMutex::new(None::<()>));
    {
        let mut inner = world.lock();
        inner.threads.push(ThreadInfo {
            status: Status::Settling,
            pending: None,
            result: (0, false),
        });
        inner.settling = 1;
    }
    let root_world = Arc::clone(&world);
    let root = spawn_model_thread(root_world, 0, move || model(), result);

    let mut depth = 0usize;
    let mut preemptions = 0usize;
    let mut prev: Option<usize> = None;
    let mut rng = random_seed.unwrap_or(0);

    let outcome = loop {
        let mut inner = world.lock();
        // Quiesce: nothing running, nothing between spawn and first park.
        while inner.active.is_some()
            || inner.settling > 0
            || inner.threads.iter().any(|t| t.status == Status::Running)
        {
            inner = world
                .turn
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(kind) = inner.failure.take() {
            let trace = inner.trace.clone();
            drop(inner);
            break Some(Failure { kind, trace });
        }
        let unfinished = inner
            .threads
            .iter()
            .filter(|t| t.status != Status::Finished)
            .count();
        if unfinished == 0 {
            drop(inner);
            break None;
        }
        // Enabled = parked threads whose pending op can proceed now.
        let enabled: Vec<usize> = inner
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Parked)
            .filter(|(_, t)| match &t.pending {
                Some((Op::Lock(m), _)) => {
                    matches!(inner.objects[*m], ObjState::Mutex { locked: false, .. })
                }
                Some((Op::Join(target), _)) => inner.threads[*target].status == Status::Finished,
                Some(_) => true,
                None => false,
            })
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            let waiting = inner
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| match &t.pending {
                    Some((op, loc)) => format!("T{i} blocked on {} @ {loc}", op.describe()),
                    None => format!("T{i} blocked (no pending op)"),
                })
                .collect();
            let trace = inner.trace.clone();
            inner.aborting = true;
            drop(inner);
            break Some(Failure {
                kind: FailureKind::Deadlock { waiting },
                trace,
            });
        }
        if depth >= cfg.max_steps {
            let trace = inner.trace.clone();
            inner.aborting = true;
            world.turn.notify_all();
            drop(inner);
            break Some(Failure {
                kind: FailureKind::StepLimit,
                trace,
            });
        }
        // Preemption budget: once spent, keep running the previous thread
        // while it stays enabled.
        let budget_left = cfg
            .max_preemptions
            .map(|max| max.saturating_sub(preemptions));
        let options: Vec<usize> = match (budget_left, prev) {
            (Some(0), Some(p)) if enabled.contains(&p) => vec![p],
            _ => enabled.clone(),
        };
        let choice = if let Some(frame) = stack.get(depth) {
            frame.choice
        } else if random_seed.is_some() {
            rng = splitmix(rng);
            let c = (rng % options.len() as u64) as usize;
            stack.push(Frame {
                choice: c,
                arity: options.len(),
            });
            c
        } else {
            // Fresh frontier: state-hash pruning may collapse the branch.
            let arity = if cfg.state_pruning && options.len() > 1 {
                let sig = state_sig(&inner);
                let budget = budget_left.unwrap_or(usize::MAX);
                match visited.get(&sig) {
                    Some(&seen) if seen >= budget => {
                        *pruned += 1;
                        1
                    }
                    _ => {
                        visited.insert(sig, budget);
                        options.len()
                    }
                }
            } else {
                options.len()
            };
            stack.push(Frame { choice: 0, arity });
            0
        };
        let tid = options[choice.min(options.len() - 1)];
        if let Some(p) = prev {
            if p != tid && enabled.contains(&p) {
                preemptions += 1;
            }
        }
        // Apply the op's effect and hand the thread the processor.
        let (op, loc) = inner.threads[tid]
            .pending
            .clone()
            .expect("enabled thread has a pending op");
        inner
            .trace
            .push(format!("T{tid} {} @ {loc}", op.describe()));
        prev = Some(tid);
        depth += 1;
        if let Op::CvWait { cv, mutex } = op {
            // Activation releases the mutex and joins the waiter list as
            // one atomic step; the thread itself stays blocked (its op()
            // call keeps sleeping) until a notify re-arms it as a
            // pending Lock. `pending` is kept for deadlock reports and
            // the reacquire location.
            if let ObjState::Mutex { locked, .. } = &mut inner.objects[mutex] {
                *locked = false;
            }
            if let ObjState::Cv { waiters } = &mut inner.objects[cv] {
                waiters.push((tid, mutex));
            }
            inner.threads[tid].status = Status::CvWaiting(cv);
            drop(inner);
            continue;
        }
        apply_op(&mut inner, tid, &op);
        inner.threads[tid].status = Status::Running;
        inner.threads[tid].pending = None;
        inner.active = Some(tid);
        drop(inner);
        world.turn.notify_all();
    };

    match outcome {
        Some(failure) => {
            teardown(&world);
            let _ = root.join();
            RunOutcome::Failed(failure)
        }
        None => {
            let _ = root.join();
            RunOutcome::Completed { depth }
        }
    }
}

/// Apply a scheduled op's state transition (the thread itself only
/// consumes the stashed result).
fn apply_op(inner: &mut Inner, tid: usize, op: &Op) {
    match *op {
        Op::Start | Op::Yield | Op::Join(_) | Op::CvWait { .. } => {}
        Op::Lock(m) => {
            if let ObjState::Mutex { locked, .. } = &mut inner.objects[m] {
                debug_assert!(!*locked, "scheduled a lock on a held mutex");
                *locked = true;
            }
        }
        Op::Unlock(m, h) => {
            if let ObjState::Mutex { locked, data_hash } = &mut inner.objects[m] {
                *locked = false;
                *data_hash = h;
            }
        }
        Op::NotifyOne(c) => {
            if let ObjState::Cv { waiters } = &mut inner.objects[c] {
                if !waiters.is_empty() {
                    let (w, mutex) = waiters.remove(0);
                    wake_waiter(inner, w, mutex);
                }
            }
        }
        Op::NotifyAll(c) => {
            if let ObjState::Cv { waiters } = &mut inner.objects[c] {
                let drained: Vec<(usize, usize)> = std::mem::take(waiters);
                for (w, mutex) in drained {
                    wake_waiter(inner, w, mutex);
                }
            }
        }
        Op::Load(a) => {
            if let ObjState::Atomic { value } = inner.objects[a] {
                inner.threads[tid].result = (value, true);
            }
        }
        Op::Store(a, v) => {
            if let ObjState::Atomic { value } = &mut inner.objects[a] {
                *value = v;
            }
        }
        Op::FetchAdd(a, v) => {
            if let ObjState::Atomic { value } = &mut inner.objects[a] {
                inner.threads[tid].result = (*value, true);
                *value = value.wrapping_add(v);
            }
        }
        Op::Swap(a, v) => {
            if let ObjState::Atomic { value } = &mut inner.objects[a] {
                inner.threads[tid].result = (*value, true);
                *value = v;
            }
        }
        Op::CompareExchange { id, current, new } => {
            if let ObjState::Atomic { value } = &mut inner.objects[id] {
                if *value == current {
                    inner.threads[tid].result = (*value, true);
                    *value = new;
                } else {
                    inner.threads[tid].result = (*value, false);
                }
            }
        }
    }
}

/// A notified waiter becomes a normal parked thread whose pending op is
/// reacquiring the mutex it released in `wait`.
fn wake_waiter(inner: &mut Inner, tid: usize, mutex: usize) {
    let loc = inner.threads[tid]
        .pending
        .as_ref()
        .map(|(_, l)| *l)
        .unwrap_or_else(Location::caller);
    inner.threads[tid].status = Status::Parked;
    inner.threads[tid].pending = Some((Op::Lock(mutex), loc));
}

/// Hash of the scheduler-visible state at a decision point: object states
/// plus every thread's status and pending operation.
fn state_sig(inner: &Inner) -> u64 {
    let mut h = DefaultHasher::new();
    for obj in &inner.objects {
        match obj {
            ObjState::Mutex { locked, data_hash } => (0u8, locked, data_hash).hash(&mut h),
            ObjState::Cv { waiters } => {
                1u8.hash(&mut h);
                waiters.hash(&mut h);
            }
            ObjState::Atomic { value } => (2u8, value).hash(&mut h),
        }
    }
    for t in &inner.threads {
        match &t.status {
            Status::Settling => 0u8.hash(&mut h),
            Status::Parked => 1u8.hash(&mut h),
            Status::Running => 2u8.hash(&mut h),
            Status::CvWaiting(cv) => (3u8, cv).hash(&mut h),
            Status::Finished => 4u8.hash(&mut h),
        }
        if let Some((op, loc)) = &t.pending {
            op.sig(&mut h);
            (loc.file(), loc.line()).hash(&mut h);
        }
    }
    h.finish()
}

/// Unblock every parked model thread so it unwinds via [`ModelAbort`],
/// then wait for all of them to finish.
fn teardown(world: &Arc<World>) {
    loop {
        let mut inner = world.lock();
        inner.aborting = true;
        let next = inner
            .threads
            .iter()
            .position(|t| matches!(t.status, Status::Parked | Status::CvWaiting(_)));
        match next {
            Some(tid) => {
                inner.threads[tid].status = Status::Parked;
                inner.active = Some(tid);
                world.turn.notify_all();
                // Wait until it is no longer ours to schedule.
                while inner.active == Some(tid) && inner.threads[tid].status != Status::Finished {
                    inner = world
                        .turn
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            None => {
                let all_done = inner
                    .threads
                    .iter()
                    .all(|t| matches!(t.status, Status::Finished));
                if all_done {
                    return;
                }
                // Someone is Running or Settling: let it reach a decision
                // point or finish.
                let _guard = world
                    .turn
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}
