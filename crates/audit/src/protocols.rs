//! Small-model renditions of the workspace's three highest-risk lock
//! protocols, written against the [`crate::model`] shim types so the
//! explorer can check **every** interleaving (bounded preemptions).
//!
//! Each constructor returns the model closure to hand to
//! [`crate::model::Explorer::explore`]; the closure runs once per
//! schedule as model thread `T0`. The models are deliberately tiny (2–3
//! helper threads, 2–3 work items) — the protocols' races are all
//! visible at that scale, and exhaustive exploration stays cheap.
//!
//! Planted-bug variants (`buggy_*` flags) re-introduce the classic
//! defect each protocol is designed to exclude, proving the checker
//! detects what it claims to detect.

use crate::model::sync::{AtomicBool, AtomicUsize, Condvar, Mutex};
use crate::model::thread;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// 1. Worker-pool park/dispatch (cfcc_linalg::pool).
// ---------------------------------------------------------------------------

/// Model of `cfcc_linalg::pool`'s park/dispatch protocol: a job is
/// `TASKS` indices claimed from an atomic counter; `HELPERS` workers pop
/// job handles from a condvar-guarded queue; the caller participates and
/// then waits on the job's `done`/`finished` pair.
///
/// Checked invariants:
/// * every task index executes **exactly once** (no double-dispatch);
/// * the caller's `wait` always returns (no lost wakeup — a lost wakeup
///   shows up as a deadlock on the `finished` condvar);
/// * workers parked on `ready` always drain on shutdown.
///
/// `buggy_wait` replaces the caller's wait with a check-then-wait that
/// releases the lock between checking `done` and sleeping — the classic
/// lost-wakeup window the real `Job::wait` (test under the lock, atomic
/// release-and-wait) is shaped to exclude.
pub fn pool_dispatch(buggy_wait: bool) -> impl Fn() + Send + Sync + 'static {
    const TASKS: usize = 2;
    const HELPERS: usize = 2;
    move || {
        // The single in-flight job, exactly as pool.rs lays it out.
        let next = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(Mutex::new(0usize));
        let finished = Arc::new(Condvar::new());
        let executed: Arc<Vec<AtomicUsize>> =
            Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect());
        // The pool's dispatch queue: one marker per pushed job handle.
        let queue = Arc::new(Mutex::new(Vec::<u8>::new()));
        let ready = Arc::new(Condvar::new());
        let pool_shutdown = Arc::new(AtomicBool::new(false));

        // `Job::work`: claim indices until none remain; count completions
        // under the `done` lock and notify when the job drains.
        let work = {
            let next = Arc::clone(&next);
            let done = Arc::clone(&done);
            let finished = Arc::clone(&finished);
            let executed = Arc::clone(&executed);
            move || loop {
                let i = next.fetch_add(1, SeqCst);
                if i >= TASKS {
                    return;
                }
                executed[i].fetch_add(1, SeqCst);
                let mut d = done.lock();
                *d += 1;
                if *d == TASKS {
                    finished.notify_all();
                }
            }
        };

        // `worker_loop`: park on `ready` until a handle appears (or the
        // model's shutdown flag ends the worker — the real pool's workers
        // are immortal; the model must terminate).
        let workers: Vec<_> = (0..HELPERS)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let ready = Arc::clone(&ready);
                let pool_shutdown = Arc::clone(&pool_shutdown);
                let work = work.clone();
                thread::spawn(move || {
                    let got_job = {
                        let mut q = queue.lock();
                        loop {
                            if q.pop().is_some() {
                                break true;
                            }
                            if pool_shutdown.load(SeqCst) {
                                break false;
                            }
                            q = ready.wait(q);
                        }
                    };
                    if got_job {
                        work();
                    }
                })
            })
            .collect();

        // `WorkerPool::run`: push one handle per helper, wake the pool,
        // participate, then wait for the job to drain.
        {
            let mut q = queue.lock();
            for _ in 0..HELPERS {
                q.push(1);
            }
        }
        ready.notify_all();
        work();
        if buggy_wait {
            // PLANTED BUG — non-atomic check-then-wait: the final worker
            // can finish the job and notify inside the window between the
            // check's unlock and the wait's sleep; the notification is
            // lost and the caller sleeps forever.
            loop {
                {
                    let d = done.lock();
                    if *d >= TASKS {
                        break;
                    }
                }
                let d = done.lock();
                let _d = finished.wait(d);
            }
        } else {
            // `Job::wait` as written: test under the lock; wait releases
            // the lock and parks atomically.
            let mut d = done.lock();
            while *d < TASKS {
                d = finished.wait(d);
            }
        }
        // Job drained; release the workers still parked on `ready`.
        pool_shutdown.store(true, SeqCst);
        ready.notify_all();
        for w in workers {
            w.join();
        }
        for (i, e) in executed.iter().enumerate() {
            let n = e.load(SeqCst);
            assert!(n == 1, "task {i} executed {n} times (want exactly 1)");
        }
        assert!(*done.lock() == TASKS, "completion count diverged");
    }
}

// ---------------------------------------------------------------------------
// 2. FactorCache thundering herd (cfcc_serve::cache).
// ---------------------------------------------------------------------------

/// Model of the FactorCache cold-key protocol: requesters race on one
/// key; the first arrival publishes an empty entry under the map lock and
/// builds the factor under the entry lock; the herd blocks on the entry
/// lock and finds the factor built.
///
/// Checked invariants (happy path, `with_build_failure = false`):
/// * **exactly one** factorization per (key, epoch) — the herd never
///   duplicates the expensive build;
/// * every requester observes a built factor;
/// * map lock and entry lock are never held together in the direction
///   that could deadlock (the model would report it).
///
/// With `with_build_failure = true`, requester 0's build "panics":
/// production poisons the entry lock, `CacheEntry::factor()` recovers by
/// clearing the slot (modeled as dropping the guard with the slot still
/// empty — the lock is released, i.e. **never leaked**), and the failed
/// key is removed from the map so a later requester re-inserts and
/// rebuilds. Checked: no deadlock (a leaked entry lock would hang the
/// herd), exactly one build succeeds, and every surviving requester still
/// sees a factor.
pub fn cache_herd(with_build_failure: bool) -> impl Fn() + Send + Sync + 'static {
    const REQUESTERS: usize = 3;
    move || {
        // The map collapsed to its single contended key: Some(()) =
        // entry published. (Entry identity is stable across the modeled
        // remove/re-insert; production allocates a fresh entry, which
        // only widens the race this model already covers — a stale Arc
        // building into the removed entry.)
        let map = Arc::new(Mutex::new(Option::<u8>::None));
        // The entry: factor slot guarded by the per-entry lock.
        let factor_slot = Arc::new(Mutex::new(Option::<u64>::None));
        let builds = Arc::new(AtomicUsize::new(0));
        let attempts = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..REQUESTERS)
            .map(|r| {
                let map = Arc::clone(&map);
                let factor_slot = Arc::clone(&factor_slot);
                let builds = Arc::clone(&builds);
                let attempts = Arc::clone(&attempts);
                thread::spawn(move || {
                    // get_or_insert: publish the entry under the map lock
                    // (drop the guard before touching the entry lock —
                    // the documented acquisition order).
                    {
                        let mut m = map.lock();
                        if m.is_none() {
                            *m = Some(1);
                        }
                    }
                    let fails = with_build_failure && r == 0;
                    {
                        let mut slot = factor_slot.lock();
                        if slot.is_none() {
                            attempts.fetch_add(1, SeqCst);
                            if fails {
                                // Build panics: the guard drop releases
                                // the entry lock; factor() recovery
                                // leaves the slot empty for a rebuild.
                                drop(slot);
                                // remove(key): failed builds must not
                                // leave a hit-shaped empty entry behind.
                                *map.lock() = None;
                                return false;
                            }
                            builds.fetch_add(1, SeqCst);
                            *slot = Some(42);
                        }
                        assert!(
                            *slot == Some(42),
                            "requester {r} saw an unbuilt factor through the entry lock"
                        );
                    }
                    true
                })
            })
            .collect();

        let succeeded = handles
            .into_iter()
            .map(|h| h.join())
            .filter(|&ok| ok)
            .count();
        let total_attempts = attempts.load(SeqCst);
        let total_builds = builds.load(SeqCst);
        // Whether the designated failer actually failed depends on the
        // schedule: if another requester builds first, requester 0 just
        // reads the memoized factor.
        let failed_builds = total_attempts - total_builds;
        assert!(
            total_builds == 1,
            "exactly one successful factorization per (key, epoch), got {total_builds}"
        );
        assert!(
            failed_builds <= usize::from(with_build_failure),
            "only the planted failure may fail a build"
        );
        assert!(
            succeeded == REQUESTERS - failed_builds,
            "every surviving requester must be served (served {succeeded}, failed {failed_builds})"
        );
        assert!(factor_slot.lock().is_some(), "factor must end built");
    }
}

// ---------------------------------------------------------------------------
// 3. BatchQueue shutdown/drain (cfcc_serve::batch).
// ---------------------------------------------------------------------------

/// Protocol variants for [`batch_drain`] — each flag re-plants one of
/// the two defects the model checker surfaced in the pre-audit
/// `BatchQueue` (both since fixed in `cfcc_serve::batch`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchBugs {
    /// `submit` pushes without testing the shutdown flag under the jobs
    /// lock (the pre-fix protocol): a submit serialized after the
    /// batcher's final drain parks a job on a queue nobody will ever
    /// read again — its handler blocks on the reply channel forever.
    pub unchecked_submit: bool,
    /// `stop` flips the shutdown flag and notifies **without acquiring
    /// the jobs lock** (the pre-fix protocol): if the batcher sits in
    /// the window between its empty/shutdown check and `wait` — holding
    /// the mutex but not yet registered on the condvar — the notify
    /// finds no waiter, the wakeup is lost, and shutdown hangs joining
    /// the batcher.
    pub unlocked_stop: bool,
}

/// Model of the BatchQueue lifecycle: submitters enqueue under the jobs
/// lock, the batcher drains batches until `stop()` flips the shutdown
/// flag, and the final drain answers stragglers with `shutting_down`.
///
/// Checked invariants:
/// * **no job is ever stranded**: every submitted job is either executed
///   or answered with a rejection;
/// * **shutdown terminates**: the batcher always observes `stop()` (a
///   lost shutdown wakeup shows up as a deadlock on `available`).
///
/// With `BatchBugs::default()` (both fixes in) the exploration must be
/// clean; each planted flag must produce its failure.
pub fn batch_drain(bugs: BatchBugs) -> impl Fn() + Send + Sync + 'static {
    const SUBMITTERS: usize = 2;
    move || {
        let jobs = Arc::new(Mutex::new(Vec::<usize>::new()));
        let available = Arc::new(Condvar::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        // Per-job outcome: 0 = unanswered, 1 = executed, 2 = rejected.
        let outcome: Arc<Vec<AtomicUsize>> =
            Arc::new((0..SUBMITTERS).map(|_| AtomicUsize::new(0)).collect());

        // run_batcher: wait for work or shutdown; on shutdown, drain the
        // stragglers into rejections and exit.
        let batcher = {
            let jobs = Arc::clone(&jobs);
            let available = Arc::clone(&available);
            let shutdown = Arc::clone(&shutdown);
            let outcome = Arc::clone(&outcome);
            thread::spawn(move || loop {
                let mut g = jobs.lock();
                while g.is_empty() && !shutdown.load(SeqCst) {
                    g = available.wait(g);
                }
                if shutdown.load(SeqCst) {
                    for j in g.drain(..) {
                        outcome[j].store(2, SeqCst);
                    }
                    return;
                }
                let batch: Vec<usize> = g.drain(..).collect();
                drop(g);
                for j in batch {
                    outcome[j].store(1, SeqCst);
                }
            })
        };

        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|i| {
                let jobs = Arc::clone(&jobs);
                let available = Arc::clone(&available);
                let shutdown = Arc::clone(&shutdown);
                let outcome = Arc::clone(&outcome);
                thread::spawn(move || {
                    let mut g = jobs.lock();
                    if !bugs.unchecked_submit && shutdown.load(SeqCst) {
                        // Refused: the handler answers shutting_down.
                        drop(g);
                        outcome[i].store(2, SeqCst);
                        return;
                    }
                    g.push(i);
                    drop(g);
                    available.notify_all();
                })
            })
            .collect();

        // begin_shutdown → queue.stop(), racing the submitters. The flag
        // flip must serialize against the batcher's check-then-wait by
        // taking the jobs lock; the notify itself can stay outside it.
        if bugs.unlocked_stop {
            shutdown.store(true, SeqCst);
        } else {
            let g = jobs.lock();
            shutdown.store(true, SeqCst);
            drop(g);
        }
        available.notify_all();

        for s in submitters {
            s.join();
        }
        batcher.join();
        for (i, o) in outcome.iter().enumerate() {
            let o = o.load(SeqCst);
            assert!(
                o != 0,
                "job {i} stranded: submitted but neither executed nor rejected"
            );
        }
    }
}
