//! The workspace must lint clean — the same gate CI runs through
//! `cfcc-audit lint`, kept as a test so `cargo test` alone catches a
//! violation before a push does.

#![forbid(unsafe_code)]

use std::path::Path;

use cfcc_audit::lint;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels under the workspace root")
        .to_path_buf();
    let allow = root.join("crates/audit/lint.allow");
    let report = lint::run(&root, &allow);
    assert!(
        report.files >= 30,
        "linter saw only {} files — source discovery is broken",
        report.files
    );
    let mut msg = String::new();
    for v in &report.violations {
        msg.push_str(&format!("{v}\n"));
    }
    for e in &report.allowlist_errors {
        msg.push_str(&format!("{e}\n"));
    }
    assert!(report.clean(), "workspace lint violations:\n{msg}");
}
