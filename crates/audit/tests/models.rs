//! Regression suite for the deterministic interleaving checker: the three
//! production protocols must survive exhaustive bounded exploration, and
//! the deliberately broken variants must be caught — proving the checker
//! can actually see the bug classes it claims to cover.

#![forbid(unsafe_code)]

use cfcc_audit::model::{Config, Explorer, FailureKind};
use cfcc_audit::protocols;

fn exhaustive() -> Config {
    Config {
        max_preemptions: Some(3),
        ..Config::default()
    }
}

#[test]
fn pool_dispatch_is_clean() {
    let report = Explorer::new(exhaustive()).explore(protocols::pool_dispatch(false));
    assert!(report.ok(), "pool park/dispatch protocol failed:\n{report}");
    assert!(
        report.exhausted,
        "bounded schedule space must be fully enumerated, got {report}"
    );
}

#[test]
fn cache_herd_is_clean() {
    let report = Explorer::new(exhaustive()).explore(protocols::cache_herd(false));
    assert!(report.ok(), "factor-cache herd protocol failed:\n{report}");
    assert!(report.exhausted);
}

#[test]
fn cache_herd_survives_a_failed_build() {
    // Eviction under a failed build must not leak the entry lock or
    // strand the other requesters.
    let report = Explorer::new(exhaustive()).explore(protocols::cache_herd(true));
    assert!(report.ok(), "herd-with-build-failure failed:\n{report}");
    assert!(report.exhausted);
}

#[test]
fn batch_drain_is_clean() {
    let report = Explorer::new(exhaustive())
        .explore(protocols::batch_drain(protocols::BatchBugs::default()));
    assert!(
        report.ok(),
        "batch shutdown/drain protocol failed:\n{report}"
    );
    assert!(report.exhausted);
}

#[test]
fn planted_lost_wakeup_is_detected() {
    // The broken pool wait (check, unlock, then sleep) loses the wakeup
    // that fires in between; the checker must find the schedule and
    // report the sleeper as deadlocked.
    let report = Explorer::new(exhaustive()).explore(protocols::pool_dispatch(true));
    let failure = report
        .failure
        .expect("planted lost-wakeup must produce a failing schedule");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "lost wakeup should surface as a deadlock, got:\n{failure}"
    );
    assert!(
        !failure.trace.is_empty(),
        "failing schedule must carry a reproduction trace"
    );
}

#[test]
fn planted_stranded_submit_is_detected() {
    // Submitting without re-checking the shutdown flag under the jobs
    // lock lets a job land after the final drain — the pre-fix
    // `BatchQueue::submit` bug.
    let report =
        Explorer::new(exhaustive()).explore(protocols::batch_drain(protocols::BatchBugs {
            unchecked_submit: true,
            ..Default::default()
        }));
    assert!(
        report.failure.is_some(),
        "planted stranded-submit must be caught, got {report}"
    );
}

#[test]
fn planted_unlocked_stop_is_detected() {
    // Storing the shutdown flag without the jobs lock races the batcher's
    // check-then-wait — the pre-fix `BatchQueue::stop` bug.
    let report =
        Explorer::new(exhaustive()).explore(protocols::batch_drain(protocols::BatchBugs {
            unlocked_stop: true,
            ..Default::default()
        }));
    let failure = report
        .failure
        .expect("planted unlocked-stop must produce a failing schedule");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "unlocked stop is a lost wakeup — expected deadlock, got:\n{failure}"
    );
}

#[test]
fn seeded_fuzz_mode_agrees_with_exhaustive() {
    // The CI bounding mode: `CFCC_MODEL_SCHEDULES=N` trades exhaustiveness
    // for a fixed number of seeded random schedules. Same seed → same
    // schedules, so this test is deterministic.
    let n: usize = std::env::var("CFCC_MODEL_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let cfg = Config {
        random_schedules: Some((0x5EED, n)),
        ..Config::default()
    };
    for (name, model) in [
        (
            "pool-dispatch",
            Box::new(protocols::pool_dispatch(false)) as Box<dyn Fn() + Send + Sync>,
        ),
        ("cache-herd", Box::new(protocols::cache_herd(false))),
        (
            "batch-drain",
            Box::new(protocols::batch_drain(protocols::BatchBugs::default())),
        ),
    ] {
        let report = Explorer::new(cfg.clone()).explore(model);
        assert!(report.ok(), "random schedules broke {name}:\n{report}");
        assert_eq!(report.schedules, n, "{name} must run exactly {n} schedules");
    }
}
