//! Zachary's Karate club graph (1977) — 34 nodes, 78 edges.
//!
//! The canonical 0-indexed edge list; one of the four tiny graphs in the
//! paper's Fig. 1 (optimum-comparison) experiment.

use cfcc_graph::Graph;

/// The 78 undirected edges of the karate club.
pub const KARATE_EDGES: [(u32, u32); 78] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 10),
    (0, 11),
    (0, 12),
    (0, 13),
    (0, 17),
    (0, 19),
    (0, 21),
    (0, 31),
    (1, 2),
    (1, 3),
    (1, 7),
    (1, 13),
    (1, 17),
    (1, 19),
    (1, 21),
    (1, 30),
    (2, 3),
    (2, 7),
    (2, 8),
    (2, 9),
    (2, 13),
    (2, 27),
    (2, 28),
    (2, 32),
    (3, 7),
    (3, 12),
    (3, 13),
    (4, 6),
    (4, 10),
    (5, 6),
    (5, 10),
    (5, 16),
    (6, 16),
    (8, 30),
    (8, 32),
    (8, 33),
    (9, 33),
    (13, 33),
    (14, 32),
    (14, 33),
    (15, 32),
    (15, 33),
    (18, 32),
    (18, 33),
    (19, 33),
    (20, 32),
    (20, 33),
    (22, 32),
    (22, 33),
    (23, 25),
    (23, 27),
    (23, 29),
    (23, 32),
    (23, 33),
    (24, 25),
    (24, 27),
    (24, 31),
    (25, 31),
    (26, 29),
    (26, 33),
    (27, 33),
    (28, 31),
    (28, 33),
    (29, 32),
    (29, 33),
    (30, 32),
    (30, 33),
    (31, 32),
    (31, 33),
    (32, 33),
];

/// Build the Karate club graph.
pub fn karate() -> Graph {
    Graph::from_edges(34, &KARATE_EDGES).expect("static edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_counts() {
        let g = karate();
        assert_eq!(g.num_nodes(), 34);
        assert_eq!(g.num_edges(), 78);
        assert!(g.is_connected());
    }

    #[test]
    fn known_degrees() {
        let g = karate();
        // The two "factions" leaders: instructor (0) and president (33).
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(33), 17);
        assert_eq!(g.degree(32), 12);
        assert_eq!(g.degree(11), 1);
        assert_eq!(g.degree_sum(), 156);
    }

    #[test]
    fn known_diameter() {
        let g = karate();
        assert_eq!(cfcc_graph::diameter::diameter_exact(&g), 5);
    }
}
