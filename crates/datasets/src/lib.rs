//! # cfcc-datasets
//!
//! The evaluation-graph suite for the CFCM reproduction.
//!
//! The paper evaluates on KONECT / SNAP / NetworkRepository datasets that
//! cannot be redistributed here; per the substitution policy (DESIGN.md §6)
//! this crate provides:
//!
//! * **Real classics, embedded exactly**: Zachary's Karate club (34 nodes,
//!   78 edges) and Knuth's Contiguous-USA state-adjacency graph (49 nodes,
//!   107 edges) — both in the paper's tiny-graph figure and both public
//!   domain folklore graphs.
//! * **Seeded synthetic proxies** for every other dataset, matched on node
//!   count, edge count, and topology class (scale-free preferential
//!   attachment for social/collaboration/web graphs; geometric/road-like
//!   for Euroroads and Amazon). Proxies carry the paper's original `n`,
//!   `m`, and diameter `τ` so harnesses can print them side by side.
//!
//! Every proxy is generated from a fixed per-dataset seed — calling
//! [`by_name`] twice yields identical graphs.

#![forbid(unsafe_code)]

pub mod karate;
pub mod registry;
pub mod usa;

pub use karate::karate;
pub use registry::{all_specs, by_name, generate, spec, suites, DatasetSpec, Topology};
pub use usa::contiguous_usa;
