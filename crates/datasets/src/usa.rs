//! The Contiguous-USA graph (Knuth) — 49 nodes (48 contiguous states plus
//! the District of Columbia), 107 border edges.
//!
//! One of the paper's four tiny Fig. 1 graphs ("Cont. USA"). Four-corner
//! point adjacencies (AZ–CO, NM–UT) are excluded, as is standard.

use cfcc_graph::{Graph, Node};

/// Two-letter codes indexing the nodes `0..49`.
pub const STATE_CODES: [&str; 49] = [
    "AL", "AZ", "AR", "CA", "CO", "CT", "DE", "DC", "FL", "GA", "ID", "IL", "IN", "IA", "KS", "KY",
    "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC",
    "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI",
    "WY",
];

/// The 107 border pairs, by state code.
pub const USA_BORDERS: [(&str, &str); 107] = [
    ("AL", "FL"),
    ("AL", "GA"),
    ("AL", "MS"),
    ("AL", "TN"),
    ("AZ", "CA"),
    ("AZ", "NV"),
    ("AZ", "NM"),
    ("AZ", "UT"),
    ("AR", "LA"),
    ("AR", "MS"),
    ("AR", "MO"),
    ("AR", "OK"),
    ("AR", "TN"),
    ("AR", "TX"),
    ("CA", "NV"),
    ("CA", "OR"),
    ("CO", "KS"),
    ("CO", "NE"),
    ("CO", "NM"),
    ("CO", "OK"),
    ("CO", "UT"),
    ("CO", "WY"),
    ("CT", "MA"),
    ("CT", "NY"),
    ("CT", "RI"),
    ("DE", "MD"),
    ("DE", "NJ"),
    ("DE", "PA"),
    ("DC", "MD"),
    ("DC", "VA"),
    ("FL", "GA"),
    ("GA", "NC"),
    ("GA", "SC"),
    ("GA", "TN"),
    ("ID", "MT"),
    ("ID", "NV"),
    ("ID", "OR"),
    ("ID", "UT"),
    ("ID", "WA"),
    ("ID", "WY"),
    ("IL", "IN"),
    ("IL", "IA"),
    ("IL", "KY"),
    ("IL", "MO"),
    ("IL", "WI"),
    ("IN", "KY"),
    ("IN", "MI"),
    ("IN", "OH"),
    ("IA", "MN"),
    ("IA", "MO"),
    ("IA", "NE"),
    ("IA", "SD"),
    ("IA", "WI"),
    ("KS", "MO"),
    ("KS", "NE"),
    ("KS", "OK"),
    ("KY", "MO"),
    ("KY", "OH"),
    ("KY", "TN"),
    ("KY", "VA"),
    ("KY", "WV"),
    ("LA", "MS"),
    ("LA", "TX"),
    ("ME", "NH"),
    ("MD", "PA"),
    ("MD", "VA"),
    ("MD", "WV"),
    ("MA", "NH"),
    ("MA", "NY"),
    ("MA", "RI"),
    ("MA", "VT"),
    ("MI", "OH"),
    ("MI", "WI"),
    ("MN", "ND"),
    ("MN", "SD"),
    ("MN", "WI"),
    ("MS", "TN"),
    ("MO", "NE"),
    ("MO", "OK"),
    ("MO", "TN"),
    ("MT", "ND"),
    ("MT", "SD"),
    ("MT", "WY"),
    ("NE", "SD"),
    ("NE", "WY"),
    ("NV", "OR"),
    ("NV", "UT"),
    ("NH", "VT"),
    ("NJ", "NY"),
    ("NJ", "PA"),
    ("NM", "OK"),
    ("NM", "TX"),
    ("NY", "PA"),
    ("NY", "VT"),
    ("NC", "SC"),
    ("NC", "TN"),
    ("NC", "VA"),
    ("ND", "SD"),
    ("OH", "PA"),
    ("OH", "WV"),
    ("OK", "TX"),
    ("OR", "WA"),
    ("PA", "WV"),
    ("SD", "WY"),
    ("TN", "VA"),
    ("UT", "WY"),
    ("VA", "WV"),
];

/// Node id of a state code.
pub fn state_index(code: &str) -> Option<Node> {
    STATE_CODES
        .iter()
        .position(|&c| c == code)
        .map(|i| i as Node)
}

/// Build the Contiguous-USA graph.
pub fn contiguous_usa() -> Graph {
    let edges: Vec<(Node, Node)> = USA_BORDERS
        .iter()
        .map(|&(a, b)| {
            (
                state_index(a).expect("known state"),
                state_index(b).expect("known state"),
            )
        })
        .collect();
    Graph::from_edges(49, &edges).expect("static edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_counts() {
        let g = contiguous_usa();
        assert_eq!(g.num_nodes(), 49);
        assert_eq!(g.num_edges(), 107);
        assert!(g.is_connected());
    }

    #[test]
    fn known_adjacencies() {
        let g = contiguous_usa();
        let e = |a: &str, b: &str| g.has_edge(state_index(a).unwrap(), state_index(b).unwrap());
        assert!(e("CA", "OR"));
        assert!(e("NY", "VT"));
        assert!(!e("CA", "TX"));
        // Four-corner point contacts are excluded.
        assert!(!e("AZ", "CO"));
        assert!(!e("NM", "UT"));
    }

    #[test]
    fn known_degrees() {
        let g = contiguous_usa();
        // Missouri and Tennessee each border 8 states.
        assert_eq!(g.degree(state_index("MO").unwrap()), 8);
        assert_eq!(g.degree(state_index("TN").unwrap()), 8);
        // Maine borders only New Hampshire.
        assert_eq!(g.degree(state_index("ME").unwrap()), 1);
    }

    #[test]
    fn every_code_unique_and_used() {
        let mut codes: Vec<&str> = STATE_CODES.to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 49);
        assert!(state_index("AK").is_none(), "Alaska is not contiguous");
        assert!(state_index("HI").is_none());
    }
}
