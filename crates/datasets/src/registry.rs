//! Registry of the paper's evaluation datasets with seeded proxy
//! generation (DESIGN.md §6).
//!
//! Each entry records the paper-reported LCC statistics (`n`, `m`, `τ`,
//! `|T*|` where given in Table II) and the topology class used to generate
//! the proxy. Proxies can be generated at reduced `scale` so that every
//! experiment has a ladder that fits a small machine; the recorded paper
//! numbers let harnesses print side-by-side rows.

use crate::{karate, usa};
use cfcc_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Topology class a proxy is generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Embedded real edge list (Karate, Contiguous-USA).
    Real,
    /// Preferential-attachment scale-free (social / collaboration / web).
    ScaleFree,
    /// Geometric, near-planar, high diameter (road networks, co-purchase).
    Road,
}

/// One dataset entry.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Lower-case dataset name as used in the paper's tables.
    pub name: &'static str,
    /// Paper-reported LCC node count.
    pub paper_nodes: usize,
    /// Paper-reported LCC edge count.
    pub paper_edges: usize,
    /// Paper-reported diameter (0 = not reported).
    pub paper_tau: u32,
    /// Paper-reported `|T*|` (0 = not reported; tiny graphs).
    pub paper_t_star: usize,
    /// Topology class for proxy generation.
    pub topology: Topology,
    /// Fixed generation seed.
    pub seed: u64,
}

/// All datasets from the paper (Fig. 1 tiny graphs + Table II).
pub const SPECS: [DatasetSpec; 31] = [
    // --- tiny (Fig. 1) ---
    DatasetSpec {
        name: "zebra",
        paper_nodes: 23,
        paper_edges: 105,
        paper_tau: 0,
        paper_t_star: 0,
        topology: Topology::ScaleFree,
        seed: 9001,
    },
    DatasetSpec {
        name: "karate",
        paper_nodes: 34,
        paper_edges: 78,
        paper_tau: 5,
        paper_t_star: 0,
        topology: Topology::Real,
        seed: 0,
    },
    DatasetSpec {
        name: "contiguous-usa",
        paper_nodes: 49,
        paper_edges: 107,
        paper_tau: 11,
        paper_t_star: 0,
        topology: Topology::Real,
        seed: 0,
    },
    DatasetSpec {
        name: "dolphins",
        paper_nodes: 62,
        paper_edges: 159,
        paper_tau: 8,
        paper_t_star: 0,
        topology: Topology::ScaleFree,
        seed: 9002,
    },
    // --- Table II ---
    DatasetSpec {
        name: "euroroads",
        paper_nodes: 1039,
        paper_edges: 1305,
        paper_tau: 62,
        paper_t_star: 7,
        topology: Topology::Road,
        seed: 9101,
    },
    DatasetSpec {
        name: "hamsterster",
        paper_nodes: 2000,
        paper_edges: 16097,
        paper_tau: 10,
        paper_t_star: 58,
        topology: Topology::ScaleFree,
        seed: 9102,
    },
    DatasetSpec {
        name: "facebook",
        paper_nodes: 4039,
        paper_edges: 88234,
        paper_tau: 8,
        paper_t_star: 127,
        topology: Topology::ScaleFree,
        seed: 9103,
    },
    DatasetSpec {
        name: "gr-qc",
        paper_nodes: 4158,
        paper_edges: 13428,
        paper_tau: 17,
        paper_t_star: 34,
        topology: Topology::ScaleFree,
        seed: 9104,
    },
    DatasetSpec {
        name: "web-epa",
        paper_nodes: 4253,
        paper_edges: 8897,
        paper_tau: 10,
        paper_t_star: 43,
        topology: Topology::ScaleFree,
        seed: 9105,
    },
    DatasetSpec {
        name: "routeviews",
        paper_nodes: 6474,
        paper_edges: 13895,
        paper_tau: 9,
        paper_t_star: 45,
        topology: Topology::ScaleFree,
        seed: 9106,
    },
    DatasetSpec {
        name: "soc-pagesgov",
        paper_nodes: 7057,
        paper_edges: 89429,
        paper_tau: 10,
        paper_t_star: 113,
        topology: Topology::ScaleFree,
        seed: 9107,
    },
    DatasetSpec {
        name: "hep-th",
        paper_nodes: 8638,
        paper_edges: 24827,
        paper_tau: 18,
        paper_t_star: 37,
        topology: Topology::ScaleFree,
        seed: 9108,
    },
    DatasetSpec {
        name: "astro-ph",
        paper_nodes: 17903,
        paper_edges: 197031,
        paper_tau: 14,
        paper_t_star: 138,
        topology: Topology::ScaleFree,
        seed: 9109,
    },
    DatasetSpec {
        name: "caida",
        paper_nodes: 26475,
        paper_edges: 53381,
        paper_tau: 17,
        paper_t_star: 86,
        topology: Topology::ScaleFree,
        seed: 9110,
    },
    DatasetSpec {
        name: "email-enron",
        paper_nodes: 33696,
        paper_edges: 180811,
        paper_tau: 13,
        paper_t_star: 177,
        topology: Topology::ScaleFree,
        seed: 9111,
    },
    DatasetSpec {
        name: "brightkite",
        paper_nodes: 56739,
        paper_edges: 212945,
        paper_tau: 18,
        paper_t_star: 146,
        topology: Topology::ScaleFree,
        seed: 9112,
    },
    DatasetSpec {
        name: "buzznet",
        paper_nodes: 101163,
        paper_edges: 2763066,
        paper_tau: 4,
        paper_t_star: 664,
        topology: Topology::ScaleFree,
        seed: 9113,
    },
    DatasetSpec {
        name: "livemocha",
        paper_nodes: 104103,
        paper_edges: 2193083,
        paper_tau: 6,
        paper_t_star: 631,
        topology: Topology::ScaleFree,
        seed: 9114,
    },
    DatasetSpec {
        name: "wordnet",
        paper_nodes: 145145,
        paper_edges: 656230,
        paper_tau: 16,
        paper_t_star: 205,
        topology: Topology::ScaleFree,
        seed: 9115,
    },
    DatasetSpec {
        name: "gowalla",
        paper_nodes: 196591,
        paper_edges: 950327,
        paper_tau: 16,
        paper_t_star: 258,
        topology: Topology::ScaleFree,
        seed: 9116,
    },
    DatasetSpec {
        name: "com-dblp",
        paper_nodes: 317080,
        paper_edges: 1049866,
        paper_tau: 23,
        paper_t_star: 131,
        topology: Topology::ScaleFree,
        seed: 9117,
    },
    DatasetSpec {
        name: "amazon",
        paper_nodes: 334863,
        paper_edges: 925872,
        paper_tau: 47,
        paper_t_star: 96,
        topology: Topology::Road,
        seed: 9118,
    },
    DatasetSpec {
        name: "actor",
        paper_nodes: 374511,
        paper_edges: 15014839,
        paper_tau: 13,
        paper_t_star: 1174,
        topology: Topology::ScaleFree,
        seed: 9119,
    },
    DatasetSpec {
        name: "dogster",
        paper_nodes: 426485,
        paper_edges: 8543321,
        paper_tau: 11,
        paper_t_star: 1174,
        topology: Topology::ScaleFree,
        seed: 9120,
    },
    DatasetSpec {
        name: "foursquare",
        paper_nodes: 639014,
        paper_edges: 3214986,
        paper_tau: 4,
        paper_t_star: 201,
        topology: Topology::ScaleFree,
        seed: 9121,
    },
    DatasetSpec {
        name: "skitter",
        paper_nodes: 1694616,
        paper_edges: 11094209,
        paper_tau: 31,
        paper_t_star: 965,
        topology: Topology::ScaleFree,
        seed: 9122,
    },
    DatasetSpec {
        name: "flixster",
        paper_nodes: 2523386,
        paper_edges: 7918801,
        paper_tau: 7,
        paper_t_star: 945,
        topology: Topology::ScaleFree,
        seed: 9123,
    },
    DatasetSpec {
        name: "orkut",
        paper_nodes: 2997166,
        paper_edges: 106349209,
        paper_tau: 9,
        paper_t_star: 1462,
        topology: Topology::ScaleFree,
        seed: 9124,
    },
    DatasetSpec {
        name: "youtube",
        paper_nodes: 3216075,
        paper_edges: 9369874,
        paper_tau: 31,
        paper_t_star: 892,
        topology: Topology::ScaleFree,
        seed: 9125,
    },
    DatasetSpec {
        name: "soc-livejournal",
        paper_nodes: 5189808,
        paper_edges: 48687945,
        paper_tau: 23,
        paper_t_star: 951,
        topology: Topology::ScaleFree,
        seed: 9126,
    },
    DatasetSpec {
        name: "sc-rel9",
        paper_nodes: 5921786,
        paper_edges: 23667162,
        paper_tau: 7,
        paper_t_star: 125,
        topology: Topology::ScaleFree,
        seed: 9127,
    },
];

/// All dataset specs.
pub fn all_specs() -> &'static [DatasetSpec] {
    &SPECS
}

/// Look up a spec by name.
pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
    SPECS.iter().find(|s| s.name == name)
}

/// Generate the dataset at `scale` (1.0 = paper size; smaller values keep
/// density but shrink node/edge counts proportionally). Real datasets
/// ignore `scale`.
pub fn generate(spec: &DatasetSpec, scale: f64) -> Graph {
    match spec.topology {
        Topology::Real => match spec.name {
            "karate" => karate(),
            "contiguous-usa" => usa::contiguous_usa(),
            other => unreachable!("unknown real dataset {other}"),
        },
        Topology::ScaleFree => {
            let (n, m) = scaled(spec, scale);
            let mut rng = StdRng::seed_from_u64(spec.seed);
            generators::scale_free_with_edges(n, m, &mut rng)
        }
        Topology::Road => {
            let (n, m) = scaled(spec, scale);
            let mut rng = StdRng::seed_from_u64(spec.seed);
            generators::geometric_with_edges(n, m, &mut rng)
        }
    }
}

fn scaled(spec: &DatasetSpec, scale: f64) -> (usize, usize) {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
    let n = ((spec.paper_nodes as f64 * scale).round() as usize).max(16);
    let m = ((spec.paper_edges as f64 * scale).round() as usize).max(n - 1);
    (n, m)
}

/// Generate a dataset by name at the given scale.
pub fn by_name(name: &str, scale: f64) -> Option<Graph> {
    spec(name).map(|s| generate(s, scale))
}

/// Named suites matching the paper's experiment groupings.
pub mod suites {
    /// Fig. 1 tiny graphs (optimum comparison).
    pub const TINY: [&str; 4] = ["zebra", "karate", "contiguous-usa", "dolphins"];
    /// Fig. 2 small graphs.
    pub const FIG2: [&str; 6] = [
        "hamsterster",
        "web-epa",
        "routeviews",
        "soc-pagesgov",
        "astro-ph",
        "email-enron",
    ];
    /// Fig. 3 large graphs.
    pub const FIG3: [&str; 4] = ["livemocha", "wordnet", "gowalla", "com-dblp"];
    /// Fig. 4 runtime-vs-ε graphs.
    pub const FIG4: [&str; 6] = [
        "euroroads",
        "soc-pagesgov",
        "email-enron",
        "com-dblp",
        "skitter",
        "sc-rel9",
    ];
    /// Fig. 5 accuracy-vs-ε graphs.
    pub const FIG5: [&str; 6] = [
        "facebook",
        "gr-qc",
        "web-epa",
        "routeviews",
        "hep-th",
        "caida",
    ];
    /// Table II small tier (feasible at full scale on a laptop).
    pub const TABLE2_SMALL: [&str; 8] = [
        "euroroads",
        "hamsterster",
        "facebook",
        "gr-qc",
        "web-epa",
        "routeviews",
        "soc-pagesgov",
        "hep-th",
    ];
    /// Table II medium tier.
    pub const TABLE2_MEDIUM: [&str; 3] = ["astro-ph", "caida", "email-enron"];
    /// Table II large tier (scaled by preset).
    pub const TABLE2_LARGE: [&str; 5] =
        ["brightkite", "buzznet", "livemocha", "wordnet", "gowalla"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        assert_eq!(SPECS.len(), 31);
        let mut names: Vec<&str> = SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 31, "duplicate dataset names");
        for suite in [
            suites::TINY.as_slice(),
            suites::FIG2.as_slice(),
            suites::FIG3.as_slice(),
            suites::FIG4.as_slice(),
            suites::FIG5.as_slice(),
            suites::TABLE2_SMALL.as_slice(),
            suites::TABLE2_MEDIUM.as_slice(),
            suites::TABLE2_LARGE.as_slice(),
        ] {
            for name in suite {
                assert!(
                    spec(name).is_some(),
                    "suite references unknown dataset {name}"
                );
            }
        }
    }

    #[test]
    fn real_datasets_exact() {
        let k = by_name("karate", 1.0).unwrap();
        assert_eq!((k.num_nodes(), k.num_edges()), (34, 78));
        let u = by_name("contiguous-usa", 0.5).unwrap(); // scale ignored
        assert_eq!((u.num_nodes(), u.num_edges()), (49, 107));
    }

    #[test]
    fn proxies_match_paper_sizes_at_full_scale() {
        for name in ["zebra", "dolphins", "euroroads", "hamsterster"] {
            let s = spec(name).unwrap();
            let g = generate(s, 1.0);
            assert_eq!(g.num_nodes(), s.paper_nodes, "{name} nodes");
            let err = (g.num_edges() as f64 - s.paper_edges as f64).abs() / s.paper_edges as f64;
            assert!(
                err < 0.06,
                "{name}: edges {} vs paper {}",
                g.num_edges(),
                s.paper_edges
            );
            assert!(g.is_connected(), "{name} must be connected");
        }
    }

    #[test]
    fn proxies_are_deterministic() {
        let a = by_name("gr-qc", 0.25).unwrap();
        let b = by_name("gr-qc", 0.25).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let s = spec("web-epa").unwrap();
        let g = generate(s, 0.25);
        let expect_n = (s.paper_nodes as f64 * 0.25).round() as usize;
        assert_eq!(g.num_nodes(), expect_n);
        let density_full = s.paper_edges as f64 / s.paper_nodes as f64;
        let density_scaled = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!((density_scaled - density_full).abs() / density_full < 0.1);
    }

    #[test]
    fn road_proxy_has_high_diameter() {
        let g = by_name("euroroads", 1.0).unwrap();
        let d = cfcc_graph::diameter::diameter_double_sweep(&g, 0, 3);
        assert!(d > 20, "road proxy diameter {d} too small");
        // Scale-free proxy of similar size is far more compact.
        let h = by_name("hamsterster", 1.0).unwrap();
        let dh = cfcc_graph::diameter::diameter_double_sweep(&h, 0, 3);
        assert!(dh < d);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nope", 1.0).is_none());
        assert!(spec("nope").is_none());
    }
}
