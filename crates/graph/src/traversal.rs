//! Breadth-first traversal, connected components, and LCC extraction.
//!
//! The CFCM estimators accumulate electrical quantities along BFS-tree paths
//! rooted at the grounded node set (the paper's `L_BFS`), so the BFS tree is
//! a first-class structure here, not just a visit order.

use crate::graph::{Graph, Node};

/// Sentinel for "no parent" in [`BfsTree`] (roots and unreachable nodes).
pub const NO_PARENT: Node = Node::MAX;

/// A BFS forest rooted at a set of source nodes.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Parent of each node in the BFS forest; `NO_PARENT` for roots and
    /// unreachable nodes.
    pub parent: Vec<Node>,
    /// Hop distance from the root set; `u32::MAX` when unreachable.
    pub depth: Vec<u32>,
    /// Nodes in visit order (roots first). Unreachable nodes are absent.
    pub order: Vec<Node>,
}

impl BfsTree {
    /// Whether `u` was reached.
    #[inline]
    pub fn reached(&self, u: Node) -> bool {
        self.depth[u as usize] != u32::MAX
    }

    /// Maximum finite depth (0 for an all-roots BFS).
    pub fn max_depth(&self) -> u32 {
        self.order
            .iter()
            .map(|&u| self.depth[u as usize])
            .max()
            .unwrap_or(0)
    }

    /// Sum of finite depths — the total BFS-path length, which is the work
    /// bound for the per-node diagonal estimator.
    pub fn total_depth(&self) -> u64 {
        self.order
            .iter()
            .map(|&u| self.depth[u as usize] as u64)
            .sum()
    }
}

/// BFS from a set of roots. Roots get depth 0 and no parent.
pub fn bfs_from_set(g: &Graph, roots: &[Node]) -> BfsTree {
    let n = g.num_nodes();
    let mut parent = vec![NO_PARENT; n];
    let mut depth = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::with_capacity(n.min(1024));
    for &r in roots {
        if depth[r as usize] == u32::MAX {
            depth[r as usize] = 0;
            order.push(r);
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = depth[u as usize];
        for &v in g.neighbors(u) {
            if depth[v as usize] == u32::MAX {
                depth[v as usize] = du + 1;
                parent[v as usize] = u;
                order.push(v);
                queue.push_back(v);
            }
        }
    }
    BfsTree {
        parent,
        depth,
        order,
    }
}

/// BFS from a single root.
pub fn bfs(g: &Graph, root: Node) -> BfsTree {
    bfs_from_set(g, &[root])
}

/// Number of nodes reachable from `root` (used by `Graph::is_connected`).
pub fn bfs_reach_count(g: &Graph, root: Node) -> usize {
    bfs(g, root).order.len()
}

/// Connected components: returns `(component_id per node, component count)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as Node {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Extract the largest connected component, relabelled to `0..size`.
/// Returns the LCC and the mapping from old node ids to new ones.
///
/// The paper runs every experiment on dataset LCCs (§V-A).
pub fn largest_connected_component(g: &Graph) -> (Graph, Vec<Option<Node>>) {
    let (comp, count) = connected_components(g);
    if count <= 1 {
        let keep: Vec<Node> = (0..g.num_nodes() as Node).collect();
        return g.induced_subgraph(&keep);
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let keep: Vec<Node> = (0..g.num_nodes() as Node)
        .filter(|&u| comp[u as usize] == best)
        .collect();
    g.induced_subgraph(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_and_isolated() -> Graph {
        // component A: 0-1-2 triangle; component B: 3-4; isolated: 5
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap()
    }

    #[test]
    fn bfs_depths_on_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let t = bfs(&g, 0);
        assert_eq!(t.depth, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.parent[4], 3);
        assert_eq!(t.parent[0], NO_PARENT);
        assert_eq!(t.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.max_depth(), 4);
        assert_eq!(t.total_depth(), 10);
    }

    #[test]
    fn bfs_from_set_multi_root() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let t = bfs_from_set(&g, &[0, 5]);
        assert_eq!(t.depth, vec![0, 1, 2, 2, 1, 0]);
        assert!(t.reached(3));
        // duplicate roots are tolerated
        let t2 = bfs_from_set(&g, &[0, 0, 5]);
        assert_eq!(t2.depth, t.depth);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = two_triangles_and_isolated();
        let t = bfs(&g, 0);
        assert!(!t.reached(3));
        assert!(!t.reached(5));
        assert_eq!(t.order.len(), 3);
    }

    #[test]
    fn components_counted() {
        let g = two_triangles_and_isolated();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
    }

    #[test]
    fn lcc_extraction() {
        let g = two_triangles_and_isolated();
        let (lcc, remap) = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 3);
        assert_eq!(lcc.num_edges(), 3);
        assert!(lcc.is_connected());
        assert!(remap[5].is_none());
        assert!(remap[0].is_some());
    }

    #[test]
    fn lcc_of_connected_graph_is_identity_sized() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (lcc, _) = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 4);
        assert_eq!(lcc.num_edges(), 3);
    }

    #[test]
    fn bfs_parent_edges_exist() {
        let g = two_triangles_and_isolated();
        let t = bfs(&g, 2);
        for &u in &t.order {
            let p = t.parent[u as usize];
            if p != NO_PARENT {
                assert!(g.has_edge(u, p));
                assert_eq!(t.depth[u as usize], t.depth[p as usize] + 1);
            }
        }
    }
}
