//! The CSR graph representation.

use crate::error::GraphError;

/// Node identifier. `u32` keeps the adjacency arrays half the size of
/// `usize` on 64-bit targets, which matters for the sampling inner loops.
pub type Node = u32;

/// A simple undirected graph in compressed-sparse-row form.
///
/// Both directions of every edge are stored, so `neighbors(u)` is a
/// contiguous sorted slice. Self-loops and duplicate edges are removed during
/// construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u+1]` indexes `targets` for node `u`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<Node>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Build a graph from an undirected edge list.
    ///
    /// Self-loops are dropped and parallel edges deduplicated. Endpoints must
    /// be `< num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(Node, Node)]) -> Result<Self, GraphError> {
        for &(a, b) in edges {
            if a as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: a as u64,
                    num_nodes,
                });
            }
            if b as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: b as u64,
                    num_nodes,
                });
            }
        }
        // Count degrees with duplicates, build, then dedup per row.
        let mut deg = vec![0usize; num_nodes];
        for &(a, b) in edges {
            if a != b {
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        offsets.push(0usize);
        for u in 0..num_nodes {
            offsets.push(offsets[u] + deg[u]);
        }
        let mut targets = vec![0 as Node; offsets[num_nodes]];
        let mut cursor = offsets[..num_nodes].to_vec();
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Sort and dedup each row in place, then compact.
        let mut new_offsets = Vec::with_capacity(num_nodes + 1);
        new_offsets.push(0usize);
        let mut write = 0usize;
        for u in 0..num_nodes {
            let (start, end) = (offsets[u], offsets[u + 1]);
            let row = &mut targets[start..end];
            row.sort_unstable();
            let mut prev: Option<Node> = None;
            let mut local = Vec::with_capacity(row.len());
            for &t in row.iter() {
                if prev != Some(t) {
                    local.push(t);
                    prev = Some(t);
                }
            }
            for (i, t) in local.iter().enumerate() {
                targets[write + i] = *t;
            }
            write += local.len();
            new_offsets.push(write);
        }
        targets.truncate(write);
        let num_edges = write / 2;
        Ok(Self {
            offsets: new_offsets,
            targets,
            num_edges,
        })
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: Node) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: Node) -> &[Node] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// The `i`-th neighbor of `u` (`i < degree(u)`), used by the random-walk
    /// inner loop to avoid slice construction overhead.
    #[inline]
    pub fn neighbor(&self, u: Node, i: usize) -> Node {
        debug_assert!(i < self.degree(u));
        self.targets[self.offsets[u as usize] + i]
    }

    /// Whether edge `{u, v}` exists (binary search; rows are sorted).
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterate over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node)> + '_ {
        (0..self.num_nodes() as Node).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all nodes. Returns 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as Node)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// The node of maximum degree (ties broken by smallest id).
    pub fn max_degree_node(&self) -> Option<Node> {
        (0..self.num_nodes() as Node).max_by_key(|&u| (self.degree(u), std::cmp::Reverse(u)))
    }

    /// `d_max(S)` from the paper's Table I: the maximum degree in the graph
    /// obtained by removing the nodes of `S` *and their incident edges*.
    /// `in_s[u]` marks membership of `u` in `S`.
    pub fn max_degree_excluding(&self, in_s: &[bool]) -> usize {
        assert_eq!(in_s.len(), self.num_nodes());
        let mut best = 0usize;
        for u in 0..self.num_nodes() {
            if in_s[u] {
                continue;
            }
            let d = self
                .neighbors(u as Node)
                .iter()
                .filter(|&&v| !in_s[v as usize])
                .count();
            best = best.max(d);
        }
        best
    }

    /// Nodes sorted by decreasing degree (ties by id), e.g. for selecting the
    /// auxiliary root set `T` of SchurCFCM.
    pub fn nodes_by_degree_desc(&self) -> Vec<Node> {
        let mut nodes: Vec<Node> = (0..self.num_nodes() as Node).collect();
        nodes.sort_by_key(|&u| (std::cmp::Reverse(self.degree(u)), u));
        nodes
    }

    /// Whether the graph is connected (true for the empty graph's vacuous
    /// case is `false`; a single node is connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return false;
        }
        crate::traversal::bfs_reach_count(self, 0) == n
    }

    /// Sum of degrees (`= 2m`); sanity helper for tests.
    pub fn degree_sum(&self) -> usize {
        self.targets.len()
    }

    /// Build the induced subgraph on `keep` (relabelled `0..keep.len()` in
    /// the given order). Returns the subgraph and the old→new mapping.
    pub fn induced_subgraph(&self, keep: &[Node]) -> (Graph, Vec<Option<Node>>) {
        let mut remap: Vec<Option<Node>> = vec![None; self.num_nodes()];
        for (new, &old) in keep.iter().enumerate() {
            remap[old as usize] = Some(new as Node);
        }
        let mut edges = Vec::new();
        for &old in keep {
            let nu = remap[old as usize].unwrap();
            for &v in self.neighbors(old) {
                if let Some(nv) = remap[v as usize] {
                    if nu < nv {
                        edges.push((nu, nv));
                    }
                }
            }
        }
        let g = Graph::from_edges(keep.len(), &edges).expect("relabelled edges are in range");
        (g, remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(0, 4), (0, 2), (0, 1), (0, 3)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.neighbor(0, 2), 3);
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            }
        ));
    }

    #[test]
    fn has_edge_and_edges_iterator() {
        let g = path4();
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 3));
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn max_degree_and_argmax() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.max_degree_node(), Some(0));
        let order = g.nodes_by_degree_desc();
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 3);
    }

    #[test]
    fn max_degree_excluding_removes_incident_edges() {
        // Star with center 0: removing the center leaves isolated leaves.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut in_s = vec![false; 4];
        assert_eq!(g.max_degree_excluding(&in_s), 3);
        in_s[0] = true;
        assert_eq!(g.max_degree_excluding(&in_s), 0);
    }

    #[test]
    fn connectivity() {
        assert!(path4().is_connected());
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        let single = Graph::from_edges(1, &[]).unwrap();
        assert!(single.is_connected());
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (sub, remap) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(remap[1], Some(0));
        assert_eq!(remap[0], None);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn isolated_node_allowed() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(2), &[] as &[Node]);
    }
}
