//! Edge-list I/O.
//!
//! Reads the whitespace-separated edge-list format used by SNAP / KONECT
//! dumps: one `u v` pair per line, `#` or `%` comment lines, arbitrary
//! (possibly sparse) vertex labels which are remapped to `0..n`.

use crate::error::GraphError;
use crate::graph::{Graph, Node};
use cfcc_util::FxHashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parse an edge list from a reader. Returns the graph and the original
/// labels (indexed by new node id).
pub fn read_edge_list<R: Read>(reader: R) -> Result<(Graph, Vec<u64>), GraphError> {
    let mut labels: Vec<u64> = Vec::new();
    let mut remap: FxHashMap<u64, Node> = FxHashMap::default();
    let mut edges: Vec<(Node, Node)> = Vec::new();
    let intern = |raw: u64, labels: &mut Vec<u64>, remap: &mut FxHashMap<u64, Node>| -> Node {
        *remap.entry(raw).or_insert_with(|| {
            labels.push(raw);
            (labels.len() - 1) as Node
        })
    };
    let buf = BufReader::new(reader);
    let mut line_buf = String::new();
    let mut reader = buf;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        let read = reader.read_line(&mut line_buf)?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let a: u64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "missing source".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                message: format!("source: {e}"),
            })?;
        let b: u64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "missing target".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                message: format!("target: {e}"),
            })?;
        // Extra columns (weights, timestamps) are ignored.
        let na = intern(a, &mut labels, &mut remap);
        let nb = intern(b, &mut labels, &mut remap);
        edges.push((na, nb));
    }
    let g = Graph::from_edges(labels.len(), &edges)?;
    Ok((g, labels))
}

/// Read an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<(Graph, Vec<u64>), GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

/// Write a graph as an edge list (`u v` per line, node ids as labels).
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> Result<(), GraphError> {
    let mut out = std::io::BufWriter::new(&mut w);
    writeln!(out, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (a, b) in g.edges() {
        writeln!(out, "{a} {b}")?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_comments_and_gaps() {
        let data = "# a comment\n% another\n10 20\n20 30\n\n10 30\n";
        let (g, labels) = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(labels, vec![10, 20, 30]);
    }

    #[test]
    fn ignores_extra_columns() {
        let data = "0 1 5.5 999\n1 2 0.25\n";
        let (g, _) = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_error_has_line_number() {
        let data = "0 1\nxyz 3\n";
        let err = read_edge_list(data.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_target_is_error() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip() {
        let g = crate::generators::cycle(6);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, labels) = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), 6);
        assert_eq!(g2.num_edges(), 6);
        // Nodes are relabelled in first-seen order; map back through the
        // labels to compare edge sets.
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = g2
            .edges()
            .map(|(a, b)| {
                let (la, lb) = (labels[a as usize] as Node, labels[b as usize] as Node);
                if la < lb {
                    (la, lb)
                } else {
                    (lb, la)
                }
            })
            .collect();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn duplicate_and_reverse_edges_collapse() {
        let data = "0 1\n1 0\n0 1\n";
        let (g, _) = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
