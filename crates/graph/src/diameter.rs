//! Graph diameter: exact (all-pairs BFS) for small graphs, and the standard
//! double-sweep lower bound for large ones.
//!
//! The paper's Table II reports the diameter `τ` of every dataset; `τ` also
//! appears in the sample-size bounds (Lemmas 3.9 and 4.5), so the estimators
//! need at least a good lower bound cheaply.

use crate::graph::{Graph, Node};
use crate::traversal::bfs;

/// Eccentricity of `u`: the maximum BFS depth from `u`.
/// Panics if the graph is disconnected (unreached nodes).
pub fn eccentricity(g: &Graph, u: Node) -> u32 {
    let t = bfs(g, u);
    assert_eq!(
        t.order.len(),
        g.num_nodes(),
        "eccentricity requires a connected graph"
    );
    t.max_depth()
}

/// Exact diameter by running BFS from every node. `O(n·m)` — only for small
/// graphs and test oracles.
pub fn diameter_exact(g: &Graph) -> u32 {
    assert!(g.num_nodes() > 0);
    (0..g.num_nodes() as Node)
        .map(|u| eccentricity(g, u))
        .max()
        .unwrap()
}

/// Double-sweep diameter estimate: BFS from `start`, then BFS from the
/// farthest node found. Returns a lower bound that is exact on trees and
/// empirically tight on real-world graphs. Repeats `sweeps` times from the
/// previous frontier for a slightly better bound.
pub fn diameter_double_sweep(g: &Graph, start: Node, sweeps: usize) -> u32 {
    assert!(g.num_nodes() > 0);
    let mut best = 0u32;
    let mut source = start;
    for _ in 0..sweeps.max(1) {
        let t = bfs(g, source);
        let (far, depth) = t
            .order
            .iter()
            .map(|&u| (u, t.depth[u as usize]))
            .max_by_key(|&(_, d)| d)
            .unwrap();
        if depth <= best {
            break;
        }
        best = depth;
        source = far;
    }
    best
}

/// Diameter selector: exact below `exact_threshold` nodes, double-sweep
/// estimate above.
pub fn diameter(g: &Graph, exact_threshold: usize) -> u32 {
    if g.num_nodes() <= exact_threshold {
        diameter_exact(g)
    } else {
        diameter_double_sweep(g, g.max_degree_node().unwrap_or(0), 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_graph_diameter() {
        let g = generators::path(10);
        assert_eq!(diameter_exact(&g), 9);
        assert_eq!(diameter_double_sweep(&g, 4, 3), 9);
    }

    #[test]
    fn cycle_graph_diameter() {
        let g = generators::cycle(10);
        assert_eq!(diameter_exact(&g), 5);
        let g = generators::cycle(11);
        assert_eq!(diameter_exact(&g), 5);
    }

    #[test]
    fn complete_graph_diameter() {
        let g = generators::complete(6);
        assert_eq!(diameter_exact(&g), 1);
    }

    #[test]
    fn star_graph_diameter() {
        let g = generators::star(7);
        assert_eq!(diameter_exact(&g), 2);
        assert_eq!(eccentricity(&g, 0), 1);
        assert_eq!(eccentricity(&g, 1), 2);
    }

    #[test]
    fn double_sweep_is_lower_bound_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let g = generators::barabasi_albert(80, 2, &mut rng);
            let exact = diameter_exact(&g);
            let est = diameter_double_sweep(&g, 0, 4);
            assert!(est <= exact);
            // Double sweep is near-exact on these graphs.
            assert!(
                est + 1 >= exact,
                "estimate {est} too far below exact {exact}"
            );
        }
    }

    #[test]
    fn selector_thresholds() {
        let g = generators::path(20);
        assert_eq!(diameter(&g, 100), 19);
        assert_eq!(diameter(&g, 5), 19); // double sweep exact on trees
    }

    #[test]
    fn single_node() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(diameter_exact(&g), 0);
    }
}
