//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, validation, and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint was `>= num_nodes`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u64,
        /// Number of nodes in the graph being built.
        num_nodes: usize,
    },
    /// The operation requires a connected graph.
    Disconnected,
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// An argument was outside its valid range (message explains).
    InvalidArgument(String),
    /// Parse failure while reading an edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains("node 9"));
        assert!(GraphError::Disconnected
            .to_string()
            .contains("not connected"));
        let p = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_wraps() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(e.to_string().contains("gone"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
