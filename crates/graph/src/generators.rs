//! Random and deterministic graph generators.
//!
//! These serve two purposes in the reproduction:
//!
//! 1. **Dataset proxies** (DESIGN.md §6): the paper evaluates on KONECT /
//!    SNAP / NetworkRepository graphs that are not redistributable here, so
//!    `cfcc-datasets` instantiates seeded generators matched to each
//!    dataset's size, density and topology class — [`scale_free_with_edges`]
//!    for social/collaboration networks, [`geometric_with_edges`] for road
//!    networks, [`watts_strogatz`] for small-world baselines.
//! 2. **Test workloads** with known structure (paths, cycles, stars,
//!    complete graphs, grids, barbells) whose Laplacian spectra and
//!    resistances are known in closed form.

use crate::graph::{Graph, Node};
use rand::seq::SliceRandom;
use rand::Rng;

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let edges: Vec<(Node, Node)> = (1..n as Node).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, &edges).unwrap()
}

/// Cycle graph on `n >= 3` nodes.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut edges: Vec<(Node, Node)> = (1..n as Node).map(|i| (i - 1, i)).collect();
    edges.push((n as Node - 1, 0));
    Graph::from_edges(n, &edges).unwrap()
}

/// Star graph: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    let edges: Vec<(Node, Node)> = (1..n as Node).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges).unwrap()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n as Node {
        for j in (i + 1)..n as Node {
            edges.push((i, j));
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// `rows × cols` grid graph (4-neighborhood).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| (r * cols + c) as Node;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).unwrap()
}

/// Barbell: two `K_c` cliques joined by a path of `p` nodes.
pub fn barbell(clique: usize, path_len: usize) -> Graph {
    assert!(clique >= 2);
    let n = 2 * clique + path_len;
    let mut edges = Vec::new();
    for i in 0..clique as Node {
        for j in (i + 1)..clique as Node {
            edges.push((i, j));
        }
    }
    let right0 = (clique + path_len) as Node;
    for i in 0..clique as Node {
        for j in (i + 1)..clique as Node {
            edges.push((right0 + i, right0 + j));
        }
    }
    // path connecting node clique-1 … right0
    let mut prev = (clique - 1) as Node;
    for p in 0..path_len as Node {
        let cur = clique as Node + p;
        edges.push((prev, cur));
        prev = cur;
    }
    edges.push((prev, right0));
    Graph::from_edges(n, &edges).unwrap()
}

/// Uniformly random recursive tree: node `i` attaches to a uniform node in
/// `0..i`. Connected by construction.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n as Node {
        let p = rng.gen_range(0..i);
        edges.push((p, i));
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_attach` existing nodes sampled proportionally to degree. Connected by
/// construction; the seed is a star on `m_attach + 1` nodes.
pub fn barabasi_albert<R: Rng>(n: usize, m_attach: usize, rng: &mut R) -> Graph {
    assert!(m_attach >= 1);
    assert!(n > m_attach);
    // `repeated` holds each node once per unit of degree: sampling an index
    // uniformly realizes preferential attachment.
    let mut repeated: Vec<Node> = Vec::with_capacity(2 * n * m_attach);
    let mut edges: Vec<(Node, Node)> = Vec::with_capacity(n * m_attach);
    let seed = m_attach + 1;
    for i in 1..seed as Node {
        edges.push((0, i));
        repeated.extend_from_slice(&[0, i]);
    }
    let mut picked = Vec::with_capacity(m_attach);
    for v in seed as Node..n as Node {
        picked.clear();
        // Sample m distinct targets (retry on collision; degree mass is
        // spread enough that this terminates fast).
        while picked.len() < m_attach {
            let t = repeated[rng.gen_range(0..repeated.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((v, t));
            repeated.push(t);
            repeated.push(v);
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// Scale-free graph targeting an exact node and (approximate) edge count.
///
/// Runs preferential attachment where node `i` attaches with either
/// `⌊a⌋` or `⌈a⌉` links (`a = target_edges / (n-1)` adjusted online) so the
/// final edge count lands within a fraction of a percent of `target_edges`
/// (duplicates removed by CSR construction may shave a few edges).
pub fn scale_free_with_edges<R: Rng>(n: usize, target_edges: usize, rng: &mut R) -> Graph {
    assert!(n >= 2);
    let target = target_edges.max(n - 1);
    let mut repeated: Vec<Node> = Vec::with_capacity(4 * target / 2);
    let mut edges: Vec<(Node, Node)> = Vec::with_capacity(target);
    edges.push((0, 1));
    repeated.extend_from_slice(&[0, 1]);
    let mut picked = Vec::new();
    for v in 2..n as Node {
        let remaining_nodes = n as Node - v;
        let remaining_edges = target.saturating_sub(edges.len());
        // Average attachments still needed per remaining node.
        let a = remaining_edges as f64 / remaining_nodes as f64;
        let lo = a.floor() as usize;
        let frac = a - lo as f64;
        let mut m_v = lo + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)));
        m_v = m_v.clamp(1, v as usize); // at most one edge to each prior node
        picked.clear();
        let mut tries = 0usize;
        while picked.len() < m_v {
            let t = repeated[rng.gen_range(0..repeated.len())];
            tries += 1;
            if !picked.contains(&t) {
                picked.push(t);
            } else if tries > 16 * m_v {
                // Fall back to uniform to escape heavy-hub collision loops.
                let t = rng.gen_range(0..v);
                if !picked.contains(&t) {
                    picked.push(t);
                }
            }
        }
        for &t in &picked {
            edges.push((v, t));
            repeated.push(t);
            repeated.push(v);
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// Watts–Strogatz small-world graph: ring lattice with `k` neighbors per
/// side, each edge rewired with probability `beta`. May rarely disconnect;
/// callers wanting connectivity should extract the LCC.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k >= 1 && 2 * k < n);
    let mut edges = Vec::with_capacity(n * k);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            let (mut a, mut b) = (u as Node, v as Node);
            if rng.gen_bool(beta) {
                // rewire endpoint b uniformly (avoid self loop)
                let mut nb = rng.gen_range(0..n as Node);
                let mut guard = 0;
                while nb == a && guard < 16 {
                    nb = rng.gen_range(0..n as Node);
                    guard += 1;
                }
                b = nb;
            }
            if a != b {
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// Erdős–Rényi `G(n, m)`: `m` distinct uniform edges.
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n * (n - 1) / 2;
    assert!(m <= max_edges, "too many edges requested");
    let mut set = cfcc_util::FxHashSet::default();
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let a = rng.gen_range(0..n as Node);
        let b = rng.gen_range(0..n as Node);
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if set.insert(key) {
            edges.push(key);
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// Road-network-like graph targeting `n` nodes and roughly `target_edges`
/// edges: uniform points in the unit square, connected to nearest neighbors,
/// then augmented with a random spanning path through space to guarantee
/// connectivity. High diameter, near-planar, low max degree — the Euroroads
/// topology class.
pub fn geometric_with_edges<R: Rng>(n: usize, target_edges: usize, rng: &mut R) -> Graph {
    assert!(n >= 2);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    // Sort nodes along a space-filling-ish sweep (x then y) and chain them:
    // guarantees connectivity with geometrically short edges.
    let mut order: Vec<Node> = (0..n as Node).collect();
    order.sort_by(|&a, &b| {
        let pa = pts[a as usize];
        let pb = pts[b as usize];
        pa.partial_cmp(&pb).unwrap()
    });
    let mut set = cfcc_util::FxHashSet::default();
    let mut edges: Vec<(Node, Node)> = Vec::with_capacity(target_edges);
    let add = |set: &mut cfcc_util::FxHashSet<(Node, Node)>,
               edges: &mut Vec<(Node, Node)>,
               a: Node,
               b: Node| {
        if a == b {
            return;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if set.insert(key) {
            edges.push(key);
        }
    };
    for w in order.windows(2) {
        add(&mut set, &mut edges, w[0], w[1]);
    }
    // Fill remaining budget with nearest-neighbor edges over a coarse bucket
    // grid (cheap approximate kNN).
    let cells = (n as f64).sqrt().ceil() as usize;
    let mut buckets: Vec<Vec<Node>> = vec![Vec::new(); cells * cells];
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        cy * cells + cx
    };
    for (i, &p) in pts.iter().enumerate() {
        buckets[cell_of(p)].push(i as Node);
    }
    let mut order2: Vec<Node> = (0..n as Node).collect();
    order2.shuffle(rng);
    'outer: for &u in order2.iter().cycle().take(4 * n) {
        if edges.len() >= target_edges {
            break 'outer;
        }
        let p = pts[u as usize];
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1) as isize;
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1) as isize;
        let mut best: Option<(f64, Node)> = None;
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx >= cells as isize || ny >= cells as isize {
                    continue;
                }
                for &v in &buckets[ny as usize * cells + nx as usize] {
                    if v == u {
                        continue;
                    }
                    let key = if u < v { (u, v) } else { (v, u) };
                    if set.contains(&key) {
                        continue;
                    }
                    let q = pts[v as usize];
                    let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2);
                    if best.is_none_or(|(bd, _)| d2 < bd) {
                        best = Some((d2, v));
                    }
                }
            }
        }
        if let Some((_, v)) = best {
            add(&mut set, &mut edges, u, v);
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_generator_counts() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(grid(3, 4).num_nodes(), 12);
        assert_eq!(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 2);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 6 + 6 + 3);
        assert!(g.is_connected());
        assert_eq!(crate::diameter::diameter_exact(&g), 5);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_tree(50, &mut rng);
        assert_eq!(g.num_edges(), 49);
        assert!(g.is_connected());
    }

    #[test]
    fn ba_connected_with_expected_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(200, 3, &mut rng);
        assert_eq!(g.num_nodes(), 200);
        assert!(g.is_connected());
        // 3 seed-star edges + 196*3 attachments, minus none (all distinct).
        assert_eq!(g.num_edges(), 3 + 196 * 3);
    }

    #[test]
    fn scale_free_hits_edge_target() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(n, m) in &[(500usize, 2000usize), (1000, 1500), (300, 299)] {
            let g = scale_free_with_edges(n, m, &mut rng);
            assert_eq!(g.num_nodes(), n);
            assert!(g.is_connected());
            let err = (g.num_edges() as f64 - m as f64).abs() / m as f64;
            assert!(err < 0.02, "n={n} wanted {m} got {}", g.num_edges());
        }
    }

    #[test]
    fn scale_free_is_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = scale_free_with_edges(2000, 8000, &mut rng);
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            g.max_degree() as f64 > 5.0 * avg,
            "hub degree should dwarf the average"
        );
    }

    #[test]
    fn watts_strogatz_ring_no_rewire() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = watts_strogatz(20, 2, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 40);
        assert!(g.is_connected());
        assert!((0..20).all(|u| g.degree(u) == 4));
    }

    #[test]
    fn erdos_renyi_exact_edges() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi_gnm(100, 300, &mut rng);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn geometric_is_connected_and_sparse() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = geometric_with_edges(1039, 1305, &mut rng);
        assert_eq!(g.num_nodes(), 1039);
        assert!(g.is_connected());
        let err = (g.num_edges() as f64 - 1305.0).abs() / 1305.0;
        assert!(err < 0.06, "got {} edges", g.num_edges());
        // Road-like: low max degree and large diameter.
        assert!(g.max_degree() <= 12);
        assert!(crate::diameter::diameter_double_sweep(&g, 0, 3) > 20);
    }
}
