//! # cfcc-graph
//!
//! Graph substrate for the CFCM reproduction: a compact CSR (compressed
//! sparse row) representation of simple undirected graphs, plus the graph
//! algorithms the paper's pipeline needs — BFS/DFS traversal, connected
//! components and largest-connected-component extraction, diameter
//! computation, random-graph generators used as dataset proxies, and
//! edge-list I/O.
//!
//! Node identifiers are `u32` (aliased as [`Node`]). All graphs produced by
//! this crate are *simple*: no self-loops, no parallel edges.
//!
//! ```
//! use cfcc_graph::Graph;
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(g.degree(0), 2);
//! assert!(g.is_connected());
//! ```

#![forbid(unsafe_code)]

pub mod diameter;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod traversal;

pub use error::GraphError;
pub use graph::{Graph, Node};
pub use traversal::BfsTree;
